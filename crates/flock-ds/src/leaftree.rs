//! Leaf-oriented (external) unbalanced binary search tree with optimistic
//! fine-grained locking — the paper's `leaftree` (§7) and the subject of its
//! Figure 4 try-lock vs strict-lock comparison. Generic over `(K, V)`.
//!
//! All keys live in leaves; internal nodes carry routing keys (left subtree
//! `< key`, right subtree `>= key`). Searches are lock-free. An insert locks
//! the leaf's parent, validates, and swings the child pointer to a fresh
//! internal node with two leaves. A remove locks grandparent then parent
//! (ancestor-first, satisfying the decreasing-lock-order requirement for
//! lock-freedom), validates, and splices the parent out, replacing it with
//! the leaf's sibling.
//!
//! Both locking disciplines of the paper are provided: [`LeafTree::new`]
//! uses try-locks (restart on busy), [`LeafTree::new_strict`] uses strict
//! locks (wait for the holder — helping it first in lock-free mode).

use flock_api::{Key, Map, Value};
use flock_core::{Admission, Lock, Mutable, Sp, UpdateOnce, ValueSlot};
use flock_sync::{ApproxLen, Backoff};

const KIND_INTERNAL: u8 = 0;
const KIND_LEAF: u8 = 1;
/// Placeholder leaf for an empty tree (no key).
const KIND_EMPTY: u8 = 2;

struct Node<K: Key, V: Value> {
    // Internal-node fields (unused in leaves).
    left: Mutable<*mut Node<K, V>>,
    right: Mutable<*mut Node<K, V>>,
    removed: UpdateOnce<bool>,
    lock: Lock,
    /// Routing key for internals; element key for leaves. `None` only on
    /// the root (which routes everything left) and the empty placeholder.
    key: Option<K>,
    /// Element value slot (leaves only): mutable in place under the leaf's
    /// **parent** lock — the lock every structural change to the leaf's
    /// child cell takes — so native `update` serializes with insert-split
    /// and remove while readers snapshot without locks.
    value: Option<ValueSlot<V>>,
    kind: u8,
    /// The root internal node routes everything left (acts as +inf).
    is_root: bool,
}

impl<K: Key, V: Value> Node<K, V> {
    fn internal(
        key: K,
        left: *mut Node<K, V>,
        right: *mut Node<K, V>,
        admission: Admission,
    ) -> Self {
        Self {
            left: Mutable::new(left),
            right: Mutable::new(right),
            removed: UpdateOnce::new(false),
            lock: Lock::new_with(admission),
            key: Some(key),
            value: None,
            kind: KIND_INTERNAL,
            is_root: false,
        }
    }

    /// The root pseudo-internal: no key, routes everything left.
    fn root(left: *mut Node<K, V>, admission: Admission) -> Self {
        Self {
            left: Mutable::new(left),
            right: Mutable::new(std::ptr::null_mut()),
            removed: UpdateOnce::new(false),
            lock: Lock::new_with(admission),
            key: None,
            value: None,
            kind: KIND_INTERNAL,
            is_root: true,
        }
    }

    fn leaf(key: K, value: V, admission: Admission) -> Self {
        Self {
            left: Mutable::new(std::ptr::null_mut()),
            right: Mutable::new(std::ptr::null_mut()),
            removed: UpdateOnce::new(false),
            lock: Lock::new_with(admission),
            key: Some(key),
            value: Some(ValueSlot::new(value)),
            kind: KIND_LEAF,
            is_root: false,
        }
    }

    fn empty_leaf(admission: Admission) -> Self {
        Self {
            left: Mutable::new(std::ptr::null_mut()),
            right: Mutable::new(std::ptr::null_mut()),
            removed: UpdateOnce::new(false),
            lock: Lock::new_with(admission),
            key: None,
            value: None,
            kind: KIND_EMPTY,
            is_root: false,
        }
    }

    /// Which child does `k` route to?
    #[inline]
    fn child_for(&self, k: &K) -> &Mutable<*mut Node<K, V>> {
        if self.is_root || self.key.as_ref().is_some_and(|x| k < x) {
            &self.left
        } else {
            &self.right
        }
    }

    /// Is this a real leaf holding exactly `k`?
    #[inline]
    fn holds(&self, k: &K) -> bool {
        self.kind == KIND_LEAF && self.key.as_ref() == Some(k)
    }
}

/// Leaf-oriented unbalanced BST map.
pub struct LeafTree<K: Key, V: Value> {
    root: *mut Node<K, V>,
    strict: bool,
    /// Admission policy stamped on every node lock this tree creates.
    admission: Admission,
    label: &'static str,
    /// Maintained element count backing `len_approx`.
    count: ApproxLen,
}

// SAFETY: mutation via Flock locks + epoch reclamation; root immutable.
unsafe impl<K: Key, V: Value> Send for LeafTree<K, V> {}
unsafe impl<K: Key, V: Value> Sync for LeafTree<K, V> {}

impl<K: Key, V: Value> Default for LeafTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

/// Acquire `lock` with the structure's discipline and run `f`.
///
/// Strict locks always acquire (waiting/helping), so they can never report
/// busy; the try-lock discipline surfaces busy as `None`.
#[inline]
fn acquire<R, F>(lock: &Lock, strict: bool, f: F) -> Option<R>
where
    R: Send + 'static,
    F: Fn() -> R + Send + Sync + 'static,
{
    if strict {
        Some(lock.lock(f))
    } else {
        lock.try_lock(f)
    }
}

impl<K: Key, V: Value> LeafTree<K, V> {
    /// An empty tree using try-locks (the paper's preferred discipline).
    pub fn new() -> Self {
        Self::build(false, "leaftree", flock_core::default_admission())
    }

    /// An empty tree using strict locks (waits instead of restarting).
    pub fn new_strict() -> Self {
        Self::build(true, "leaftree-strict", flock_core::default_admission())
    }

    /// An empty try-lock tree whose node locks all use `admission`
    /// (see [`flock_core::admission`]).
    pub fn with_admission(admission: Admission) -> Self {
        Self::build(false, "leaftree", admission)
    }

    /// An empty strict-lock tree whose node locks all use `admission`.
    pub fn new_strict_with_admission(admission: Admission) -> Self {
        Self::build(true, "leaftree-strict", admission)
    }

    fn build(strict: bool, label: &'static str, admission: Admission) -> Self {
        let empty = flock_epoch::alloc(Node::empty_leaf(admission));
        Self {
            root: flock_epoch::alloc(Node::root(empty, admission)),
            strict,
            admission,
            label,
            count: ApproxLen::new(),
        }
    }

    /// Lock-free search: returns `(grandparent, parent, leaf)` for `k`.
    /// `grandparent` is null when `parent` is the root.
    #[allow(clippy::type_complexity)]
    fn search(&self, k: &K) -> (*mut Node<K, V>, *mut Node<K, V>, *mut Node<K, V>) {
        let mut gparent = std::ptr::null_mut();
        let mut parent = self.root;
        // SAFETY: caller pinned; nodes epoch-reclaimed.
        let mut cur = unsafe { (*parent).child_for(k).load() };
        while unsafe { &*cur }.kind == KIND_INTERNAL {
            gparent = parent;
            parent = cur;
            cur = unsafe { &*cur }.child_for(k).load();
        }
        (gparent, parent, cur)
    }

    /// Insert; `false` if present.
    pub fn insert(&self, k: K, v: V) -> bool {
        let _g = flock_epoch::pin();
        let admission = self.admission;
        let mut backoff = Backoff::new();
        loop {
            let (_, parent, leaf) = self.search(&k);
            // SAFETY: epoch-pinned.
            let leaf_ref = unsafe { &*leaf };
            if leaf_ref.holds(&k) {
                return false;
            }
            let (sp_parent, sp_leaf) = (Sp(parent), Sp(leaf));
            let (k2, v2) = (k.clone(), v.clone());
            // SAFETY: epoch-pinned.
            let outcome = acquire(&unsafe { &*parent }.lock, self.strict, move || {
                // SAFETY: thunk runners hold epoch protection.
                let p = unsafe { sp_parent.as_ref() };
                let l = unsafe { sp_leaf.as_ref() };
                let cell = p.child_for(&k2);
                if p.removed.load() || cell.load() != sp_leaf.ptr() {
                    return false; // validate
                }
                if l.kind == KIND_EMPTY {
                    // Empty slot: replace placeholder with the new leaf.
                    let newl = flock_core::alloc(|| Node::leaf(k2.clone(), v2.clone(), admission));
                    cell.store(newl);
                    // SAFETY: placeholder unlinked above; retired once.
                    unsafe { flock_core::retire(sp_leaf.ptr()) };
                    return true;
                }
                // Split: new internal with the old leaf and the new leaf.
                // Both allocations are their own idempotent allocs: a
                // nested plain `flock_epoch::alloc` inside the internal
                // node's init closure would leak one leaf per replayed run
                // (the loser's outer node is freed, but a plain nested
                // allocation inside it is not).
                let lk = l.key.clone().expect("real leaf has a key");
                let new_leaf = flock_core::alloc(|| Node::leaf(k2.clone(), v2.clone(), admission));
                let newn = flock_core::alloc(|| {
                    if k2 < lk {
                        Node::internal(lk.clone(), new_leaf, sp_leaf.ptr(), admission)
                    } else {
                        Node::internal(k2.clone(), sp_leaf.ptr(), new_leaf, admission)
                    }
                });
                cell.store(newn);
                true
            });
            match outcome {
                Some(true) => {
                    self.count.inc();
                    return true;
                }
                Some(false) => {}         // validation failed: re-search now
                None => backoff.snooze(), // parent lock busy (try-lock mode)
            }
        }
    }

    /// Remove; `false` if absent.
    pub fn remove(&self, k: K) -> bool {
        let _g = flock_epoch::pin();
        let admission = self.admission;
        let mut backoff = Backoff::new();
        loop {
            let (gparent, parent, leaf) = self.search(&k);
            // SAFETY: epoch-pinned.
            let leaf_ref = unsafe { &*leaf };
            if !leaf_ref.holds(&k) {
                return false;
            }
            let outcome = if gparent.is_null() {
                // Leaf hangs directly off the root: swap in a placeholder.
                let (sp_parent, sp_leaf) = (Sp(parent), Sp(leaf));
                let k2 = k.clone();
                // SAFETY: epoch-pinned; parent == root.
                acquire(&unsafe { &*parent }.lock, self.strict, move || {
                    // SAFETY: thunk runners hold epoch protection.
                    let p = unsafe { sp_parent.as_ref() };
                    let cell = p.child_for(&k2);
                    if cell.load() != sp_leaf.ptr() {
                        return false;
                    }
                    let empty = flock_core::alloc(move || Node::empty_leaf(admission));
                    cell.store(empty);
                    // SAFETY: unlinked above; idempotent retire.
                    unsafe { flock_core::retire(sp_leaf.ptr()) };
                    true
                })
                .map(Some)
            } else {
                let (sp_g, sp_p, sp_l) = (Sp(gparent), Sp(parent), Sp(leaf));
                let strict = self.strict;
                // Ancestor-first lock order: grandparent, then parent.
                // SAFETY: epoch-pinned.
                acquire(&unsafe { &*gparent }.lock, strict, move || {
                    // SAFETY: thunk runners hold epoch protection.
                    let p = unsafe { sp_p.as_ref() };
                    acquire(&p.lock, strict, move || {
                        // SAFETY: as above.
                        let g = unsafe { sp_g.as_ref() };
                        let p = unsafe { sp_p.as_ref() };
                        if g.removed.load() || p.removed.load() {
                            return false;
                        }
                        // Validate the two links and find which side of g
                        // the parent hangs on.
                        let gcell = if g.left.load() == sp_p.ptr() {
                            &g.left
                        } else if g.right.load() == sp_p.ptr() {
                            &g.right
                        } else {
                            return false;
                        };
                        let sibling = if p.left.load() == sp_l.ptr() {
                            p.right.load()
                        } else if p.right.load() == sp_l.ptr() {
                            p.left.load()
                        } else {
                            return false;
                        };
                        p.removed.store(true);
                        gcell.store(sibling); // splice parent + leaf out
                        // SAFETY: both unlinked above; idempotent retires.
                        unsafe {
                            flock_core::retire(sp_p.ptr());
                            flock_core::retire(sp_l.ptr());
                        }
                        true
                    })
                })
            };
            match outcome {
                Some(Some(true)) => {
                    self.count.dec();
                    return true;
                }
                Some(Some(false)) => {} // validation failed: re-search now
                _ => backoff.snooze(),  // an ancestor lock was busy
            }
        }
    }

    /// Optimistic variant of [`LeafTree::search`]: plain `Acquire` child
    /// loads (no thunk-log traffic), returning only `(parent, leaf)`.
    fn search_acquire(&self, k: &K) -> (*mut Node<K, V>, *mut Node<K, V>) {
        let mut parent = self.root;
        // SAFETY: caller pinned; nodes epoch-reclaimed.
        let mut cur = unsafe { (*parent).child_for(k).load_acquire() };
        while unsafe { &*cur }.kind == KIND_INTERNAL {
            parent = cur;
            cur = unsafe { &*cur }.child_for(k).load_acquire();
        }
        (parent, cur)
    }

    /// Wait-free lookup — optimistic version-validated fast path with a
    /// bounded fallback to the committed read. The leaf's **parent** lock
    /// is the owning lock (every structural change to the leaf's child
    /// cell and every in-place value update acquires it), so an unchanged
    /// parent version across the read proves the `(key, value)` pair was
    /// simultaneously present.
    pub fn get(&self, k: K) -> Option<V> {
        let _g = flock_epoch::pin();
        flock_core::read_validated(
            || {
                let (parent, leaf) = self.search_acquire(&k);
                // SAFETY: epoch-pinned.
                let (p, l) = unsafe { (&*parent, &*leaf) };
                if !l.holds(&k) {
                    return Some(None); // absence needs no validation
                }
                let v0 = p.lock.version()?;
                if p.removed.load() || p.child_for(&k).load_acquire() != leaf {
                    return None; // stale path: retry / fall back
                }
                let v = l.value.as_ref().map(ValueSlot::read_acquire);
                p.lock.validate(v0).then_some(v)
            },
            || {
                let (_, _, leaf) = self.search(&k);
                // SAFETY: epoch-pinned.
                let l = unsafe { &*leaf };
                if l.holds(&k) {
                    l.value.as_ref().map(ValueSlot::read)
                } else {
                    None
                }
            },
        )
    }

    /// Presence-only lookup: leaf keys are immutable, so the search plus
    /// the key check suffices — no value decode, no clone, no validation.
    /// (Inside a thunk the committed search keeps helper replays
    /// deterministic.)
    pub fn contains(&self, k: &K) -> bool {
        let _g = flock_epoch::pin();
        if flock_core::in_thunk() {
            let (_, _, leaf) = self.search(k);
            // SAFETY: epoch-pinned.
            return unsafe { &*leaf }.holds(k);
        }
        let (_, leaf) = self.search_acquire(k);
        // SAFETY: epoch-pinned.
        unsafe { &*leaf }.holds(k)
    }

    /// Ordered range scan (see [`flock_api::OrderedMap`] for the
    /// consistency contract): an in-order routing-key-pruned walk reading
    /// each leaf's value under its parent lock's version, with a bounded
    /// fallback to the committed per-slot read.
    pub fn range(&self, lo: std::ops::Bound<&K>, hi: std::ops::Bound<&K>) -> Vec<(K, V)> {
        let _g = flock_epoch::pin();
        let mut out = Vec::new();
        // SAFETY: pinned walk.
        unsafe {
            self.range_walk(
                self.root,
                (*self.root).left.load_acquire(),
                lo,
                hi,
                &mut out,
            )
        };
        out
    }

    unsafe fn range_walk(
        &self,
        parent: *mut Node<K, V>,
        n: *mut Node<K, V>,
        lo: std::ops::Bound<&K>,
        hi: std::ops::Bound<&K>,
        out: &mut Vec<(K, V)>,
    ) {
        // SAFETY: pinned per caller.
        let node = unsafe { &*n };
        match node.kind {
            KIND_EMPTY => {}
            KIND_LEAF => {
                let k = node.key.clone().expect("real leaf has a key");
                if !flock_api::key_in_range(&k, lo, hi) {
                    return;
                }
                // SAFETY: pinned.
                let p = unsafe { &*parent };
                let v = flock_core::read_validated(
                    || {
                        let v0 = p.lock.version()?;
                        let v = node.value.as_ref().map(ValueSlot::read_acquire);
                        p.lock.validate(v0).then_some(v)
                    },
                    || node.value.as_ref().map(ValueSlot::read),
                );
                if let Some(v) = v {
                    out.push((k, v));
                }
            }
            _ => {
                // Internal: left subtree < key, right subtree >= key.
                let x = node.key.as_ref().expect("internal has a routing key");
                if flock_api::key_above_lower(x, lo) {
                    // The left subtree (keys < x) can still intersect.
                    unsafe { self.range_walk(n, node.left.load_acquire(), lo, hi, out) };
                }
                if flock_api::key_below_upper(x, hi) {
                    unsafe { self.range_walk(n, node.right.load_acquire(), lo, hi, out) };
                }
            }
        }
    }

    /// Native atomic update: replace the value stored under `k` in place —
    /// one idempotent slot store under the leaf's **parent** lock. Returns
    /// `false` (storing nothing) if `k` is absent.
    ///
    /// The parent's lock guards the child cell through which every
    /// structural change to this leaf goes (insert-split replaces the leaf,
    /// both remove paths hold the parent's lock before splicing), so
    /// validating `cell == leaf && !parent.removed` under it pins "the key
    /// is present" for the whole thunk: readers see the old value or the
    /// new one, never absence or a third value.
    pub fn update(&self, k: K, v: V) -> bool {
        let _g = flock_epoch::pin();
        let mut backoff = Backoff::new();
        loop {
            let (_, parent, leaf) = self.search(&k);
            // SAFETY: epoch-pinned.
            let leaf_ref = unsafe { &*leaf };
            if !leaf_ref.holds(&k) {
                return false;
            }
            let (sp_parent, sp_leaf) = (Sp(parent), Sp(leaf));
            let (k2, v2) = (k.clone(), v.clone());
            // SAFETY: epoch-pinned.
            let outcome = acquire(&unsafe { &*parent }.lock, self.strict, move || {
                // SAFETY: thunk runners hold epoch protection.
                let p = unsafe { sp_parent.as_ref() };
                let l = unsafe { sp_leaf.as_ref() };
                let cell = p.child_for(&k2);
                if p.removed.load() || cell.load() != sp_leaf.ptr() {
                    return false; // leaf replaced/spliced: re-search
                }
                l.value
                    .as_ref()
                    .expect("real leaf has a value slot")
                    .set(v2.clone());
                true
            });
            match outcome {
                Some(true) => return true,
                Some(false) => {}         // validation failed: re-search now
                None => backoff.snooze(), // parent lock busy (try-lock mode)
            }
        }
    }

    /// Element count (O(n) walk; tests/diagnostics).
    pub fn len(&self) -> usize {
        let _g = flock_epoch::pin();
        // SAFETY: pinned; quiescent callers get exact counts.
        unsafe { Self::count_nodes((*self.root).left.load()) }
    }

    /// Is the tree empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    unsafe fn count_nodes(n: *mut Node<K, V>) -> usize {
        // SAFETY: pinned walk per caller.
        let node = unsafe { &*n };
        match node.kind {
            KIND_LEAF => 1,
            KIND_EMPTY => 0,
            _ => unsafe {
                Self::count_nodes(node.left.load()) + Self::count_nodes(node.right.load())
            },
        }
    }

    /// Ordered snapshot — single-threaded use.
    pub fn collect(&self) -> Vec<(K, V)> {
        let _g = flock_epoch::pin();
        let mut out = Vec::new();
        // SAFETY: pinned walk.
        unsafe { Self::walk((*self.root).left.load(), &mut out) };
        out
    }

    unsafe fn walk(n: *mut Node<K, V>, out: &mut Vec<(K, V)>) {
        // SAFETY: pinned walk per caller.
        let node = unsafe { &*n };
        match node.kind {
            KIND_LEAF => {
                if let (Some(k), Some(v)) =
                    (node.key.clone(), node.value.as_ref().map(ValueSlot::read))
                {
                    out.push((k, v));
                }
            }
            KIND_EMPTY => {}
            _ => unsafe {
                Self::walk(node.left.load(), out);
                Self::walk(node.right.load(), out);
            },
        }
    }

    /// Quiescent invariant check: BST routing holds, all leaves reachable on
    /// the correct side, no removed internals linked.
    pub fn check_invariants(&self) {
        // SAFETY: quiescent per contract.
        unsafe {
            Self::check((*self.root).left.load(), None, None);
        }
    }

    unsafe fn check(n: *mut Node<K, V>, lo: Option<&K>, hi: Option<&K>) {
        // SAFETY: quiescent per caller.
        let node = unsafe { &*n };
        match node.kind {
            KIND_EMPTY => {}
            KIND_LEAF => {
                let k = node.key.as_ref().expect("real leaf has a key");
                if let Some(lo) = lo {
                    assert!(k >= lo, "leaf key below routing bound");
                }
                if let Some(hi) = hi {
                    assert!(k < hi, "leaf key above routing bound");
                }
            }
            _ => {
                assert!(!node.removed.load(), "removed internal reachable");
                let k = node.key.as_ref().expect("internal has a routing key");
                if let Some(lo) = lo {
                    assert!(k >= lo);
                }
                if let Some(hi) = hi {
                    assert!(k <= hi);
                }
                unsafe {
                    Self::check(node.left.load(), lo, Some(k));
                    Self::check(node.right.load(), Some(k), hi);
                }
            }
        }
    }
}

impl<K: Key, V: Value> Drop for LeafTree<K, V> {
    fn drop(&mut self) {
        // SAFETY: exclusive access; retired nodes belong to the collector.
        unsafe fn free<K: Key, V: Value>(n: *mut Node<K, V>) {
            if n.is_null() {
                return;
            }
            // SAFETY: exclusive teardown.
            unsafe {
                let node = &*n;
                if node.kind == KIND_INTERNAL {
                    free(node.left.load());
                    free(node.right.load());
                }
                flock_epoch::free_now(n);
            }
        }
        // SAFETY: exclusive access.
        unsafe {
            free((*self.root).left.load());
            flock_epoch::free_now(self.root);
        }
    }
}

impl<K: Key, V: Value> Map<K, V> for LeafTree<K, V> {
    fn insert(&self, key: K, value: V) -> bool {
        LeafTree::insert(self, key, value)
    }
    fn remove(&self, key: K) -> bool {
        LeafTree::remove(self, key)
    }
    fn get(&self, key: K) -> Option<V> {
        LeafTree::get(self, key)
    }
    fn contains(&self, key: K) -> bool {
        LeafTree::contains(self, &key)
    }
    fn name(&self) -> &'static str {
        self.label
    }
    fn update(&self, key: K, value: V) -> bool {
        LeafTree::update(self, key, value)
    }
    fn has_atomic_update(&self) -> bool {
        true
    }
    fn len_approx(&self) -> Option<usize> {
        Some(self.count.get())
    }
}

impl<K: Key, V: Value> flock_api::OrderedMap<K, V> for LeafTree<K, V> {
    fn range(&self, lo: std::ops::Bound<&K>, hi: std::ops::Bound<&K>) -> Vec<(K, V)> {
        LeafTree::range(self, lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flock_api::testing as testutil;

    #[test]
    fn native_update_in_place() {
        testutil::both_modes(|| {
            for t in [LeafTree::<u64, u64>::new(), LeafTree::new_strict()] {
                assert!(!t.update(1, 10), "update of an absent key refused");
                assert!(t.insert(1, 10));
                assert!(t.insert(2, 20));
                assert!(t.update(1, 11));
                assert_eq!(t.get(1), Some(11));
                assert_eq!(t.len(), 2, "update must not change the count");
                assert!(t.remove(1));
                assert!(!t.update(1, 12));
                t.check_invariants();
            }
        });
    }

    #[test]
    fn basic_ops() {
        testutil::both_modes(|| {
            let trees: [LeafTree<u64, u64>; 2] = [LeafTree::new(), LeafTree::new_strict()];
            for t in trees {
                assert!(t.is_empty());
                assert!(t.insert(5, 50));
                assert!(!t.insert(5, 51));
                assert!(t.insert(3, 30));
                assert!(t.insert(8, 80));
                assert!(t.insert(1, 10));
                assert_eq!(t.collect(), vec![(1, 10), (3, 30), (5, 50), (8, 80)]);
                assert!(t.remove(3));
                assert!(!t.remove(3));
                assert_eq!(t.get(3), None);
                assert_eq!(t.get(8), Some(80));
                t.check_invariants();
            }
        });
    }

    #[test]
    fn remove_down_to_empty_and_refill() {
        testutil::both_modes(|| {
            let t: LeafTree<u64, u64> = LeafTree::new();
            for k in 0..32 {
                assert!(t.insert(k, k));
            }
            for k in 0..32 {
                assert!(t.remove(k));
            }
            assert!(t.is_empty());
            for k in 0..32 {
                assert!(t.insert(k, k + 100));
            }
            assert_eq!(t.len(), 32);
            t.check_invariants();
        });
    }

    #[test]
    fn oracle() {
        testutil::both_modes(|| {
            let t: LeafTree<u64, u64> = LeafTree::new();
            testutil::oracle_check(&t, 4_000, 256, 5);
            t.check_invariants();
        });
    }

    #[test]
    fn oracle_strict() {
        testutil::both_modes(|| {
            let t: LeafTree<u64, u64> = LeafTree::new_strict();
            testutil::oracle_check(&t, 4_000, 256, 6);
            t.check_invariants();
        });
    }

    #[test]
    fn concurrent_partitioned() {
        testutil::both_modes(|| {
            let t: LeafTree<u64, u64> = LeafTree::new();
            testutil::partition_stress(&t, 4, 1_500);
            t.check_invariants();
        });
    }

    #[test]
    fn concurrent_partitioned_strict() {
        testutil::both_modes(|| {
            let t: LeafTree<u64, u64> = LeafTree::new_strict();
            testutil::partition_stress(&t, 4, 1_000);
            t.check_invariants();
        });
    }
}
