//! Sorted singly-linked *lazy list* with optimistic try-locks, generic over
//! `(K, V)`.
//!
//! The classic lazy-list design (Heller et al., OPODIS 2006), written with
//! Flock locks as in the paper's `lazylist` (§7): traversal takes no locks;
//! `insert` locks the predecessor; `remove` locks predecessor and victim,
//! marks the victim `removed` (logical delete) and splices it out (physical
//! delete). `get` is wait-free: it walks the list and checks the `removed`
//! flag of the matching node.

use flock_api::{Key, Map, Value};
use flock_core::{Admission, Lock, Mutable, Sp, UpdateOnce, ValueSlot};
use flock_sync::{ApproxLen, Backoff};

const KIND_NORMAL: u8 = 0;
const KIND_HEAD: u8 = 1;
const KIND_TAIL: u8 = 2;

struct Node<K: Key, V: Value> {
    next: Mutable<*mut Node<K, V>>,
    removed: UpdateOnce<bool>,
    /// `None` only on the head/tail sentinels.
    key: Option<K>,
    /// Lock-word-adjacent value slot (`None` only on sentinels): mutable in
    /// place under this node's own lock (native `update`), snapshot-readable
    /// without it.
    value: Option<ValueSlot<V>>,
    lock: Lock,
    kind: u8,
}

impl<K: Key, V: Value> Node<K, V> {
    fn new(
        key: Option<K>,
        value: Option<V>,
        next: *mut Node<K, V>,
        kind: u8,
        admission: Admission,
    ) -> Self {
        Self {
            next: Mutable::new(next),
            removed: UpdateOnce::new(false),
            key,
            value: value.map(ValueSlot::new),
            lock: Lock::new_with(admission),
            kind,
        }
    }

    #[inline]
    fn at_or_after(&self, k: &K) -> bool {
        match self.kind {
            KIND_TAIL => true,
            KIND_HEAD => false,
            _ => self.key.as_ref().is_some_and(|x| x >= k),
        }
    }

    #[inline]
    fn holds(&self, k: &K) -> bool {
        self.kind == KIND_NORMAL && self.key.as_ref() == Some(k)
    }
}

/// Sorted singly-linked lazy list map.
pub struct LazyList<K: Key, V: Value> {
    head: *mut Node<K, V>,
    tail: *mut Node<K, V>,
    /// Maintained element count backing `len_approx`.
    count: ApproxLen,
    /// Admission policy stamped on every node lock (fixed at construction).
    admission: Admission,
}

// SAFETY: mutation via Flock locks + epoch reclamation; head/tail immutable.
unsafe impl<K: Key, V: Value> Send for LazyList<K, V> {}
unsafe impl<K: Key, V: Value> Sync for LazyList<K, V> {}

impl<K: Key, V: Value> Default for LazyList<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Key, V: Value> LazyList<K, V> {
    /// An empty list using the process-default admission policy.
    pub fn new() -> Self {
        Self::with_admission(flock_core::default_admission())
    }

    /// An empty list whose node locks all use `admission` (see
    /// [`flock_core::admission`]).
    pub fn with_admission(admission: Admission) -> Self {
        let tail = flock_epoch::alloc(Node::new(
            None,
            None,
            std::ptr::null_mut(),
            KIND_TAIL,
            admission,
        ));
        let head = flock_epoch::alloc(Node::new(None, None, tail, KIND_HEAD, admission));
        Self {
            head,
            tail,
            count: ApproxLen::new(),
            admission,
        }
    }

    /// Unlocked traversal: returns `(pred, curr)` with
    /// `pred.key < k <= curr.key` (sentinels at the ends).
    fn search(&self, k: &K) -> (*mut Node<K, V>, *mut Node<K, V>) {
        let mut pred = self.head;
        // SAFETY: epoch-pinned caller; nodes reclaimed via collector.
        let mut curr = unsafe { (*pred).next.load() };
        while !unsafe { &*curr }.at_or_after(k) {
            pred = curr;
            curr = unsafe { &*curr }.next.load();
        }
        (pred, curr)
    }

    /// Optimistic [`LazyList::search`] tail: first node at-or-after `k`,
    /// with plain `Acquire` loads and no thunk-log traffic. Caller must be
    /// epoch-pinned and outside any thunk ([`flock_core::read_validated`]).
    fn search_acquire(&self, k: &K) -> *mut Node<K, V> {
        // SAFETY: epoch-pinned caller; nodes reclaimed via collector.
        let mut curr = unsafe { (*self.head).next.load_acquire() };
        while !unsafe { &*curr }.at_or_after(k) {
            curr = unsafe { &*curr }.next.load_acquire();
        }
        curr
    }

    /// Version-validated (presence, value) snapshot of one node under its
    /// **own** lock — the logical-delete lock (`removed` is only ever set
    /// under it) and the native-update lock, so an unchanged version across
    /// the reads proves the pair held simultaneously. `None` = removed.
    fn read_node_validated(c: &Node<K, V>) -> Option<V> {
        flock_core::read_validated(
            || {
                let v0 = c.lock.version()?;
                if c.removed.load() {
                    return Some(None); // monotonic flag: definitive
                }
                let v = c.value.as_ref().map(ValueSlot::read_acquire);
                c.lock.validate(v0).then_some(v)
            },
            || (!c.removed.load()).then(|| c.value.as_ref().map(ValueSlot::read))?,
        )
    }

    /// Insert; `false` if present.
    pub fn insert(&self, k: K, v: V) -> bool {
        let _g = flock_epoch::pin();
        let mut backoff = Backoff::new();
        loop {
            let (pred, curr) = self.search(&k);
            // SAFETY: epoch-pinned.
            let curr_ref = unsafe { &*curr };
            if curr_ref.holds(&k) && !curr_ref.removed.load() {
                return false;
            }
            let (sp_pred, sp_curr) = (Sp(pred), Sp(curr));
            let (k2, v2) = (k.clone(), v.clone());
            let admission = self.admission;
            // SAFETY: epoch-pinned.
            match unsafe { &*pred }.lock.try_lock(move || {
                // SAFETY: epoch protection via owner pin / helper adoption.
                let p = unsafe { sp_pred.as_ref() };
                if p.removed.load() || p.next.load() != sp_curr.ptr() {
                    return false; // validate
                }
                let newn = flock_core::alloc(|| {
                    Node::new(
                        Some(k2.clone()),
                        Some(v2.clone()),
                        sp_curr.ptr(),
                        KIND_NORMAL,
                        admission,
                    )
                });
                p.next.store(newn);
                true
            }) {
                Some(true) => {
                    self.count.inc();
                    return true;
                }
                Some(false) => {}         // validation failed: re-search now
                None => backoff.snooze(), // predecessor lock busy
            }
        }
    }

    /// Remove; `false` if absent.
    pub fn remove(&self, k: K) -> bool {
        let _g = flock_epoch::pin();
        let mut backoff = Backoff::new();
        loop {
            let (pred, curr) = self.search(&k);
            // SAFETY: epoch-pinned.
            let curr_ref = unsafe { &*curr };
            if !curr_ref.holds(&k) || curr_ref.removed.load() {
                return false;
            }
            let (sp_pred, sp_curr) = (Sp(pred), Sp(curr));
            // SAFETY: epoch-pinned.
            match unsafe { &*pred }.lock.try_lock(move || {
                // SAFETY: see insert.
                let c = unsafe { sp_curr.as_ref() };
                c.lock.try_lock(move || {
                    // SAFETY: as above.
                    let p = unsafe { sp_pred.as_ref() };
                    let c = unsafe { sp_curr.as_ref() };
                    if p.removed.load() || p.next.load() != sp_curr.ptr() || c.removed.load() {
                        return false; // validate
                    }
                    c.removed.store(true); // logical delete
                    p.next.store(c.next.load()); // physical delete
                    // SAFETY: unlinked above; idempotent retire fires once.
                    unsafe { flock_core::retire(sp_curr.ptr()) };
                    true
                })
            }) {
                Some(Some(true)) => {
                    self.count.dec();
                    return true;
                }
                Some(Some(false)) => {} // validation failed: re-search now
                _ => backoff.snooze(),  // predecessor or victim lock busy
            }
        }
    }

    /// Wait-free lookup: optimistic version-validated snapshot against the
    /// node's own lock, committed path after bounded failures.
    pub fn get(&self, k: K) -> Option<V> {
        let _g = flock_epoch::pin();
        flock_core::read_validated(
            || {
                // SAFETY: epoch-pinned.
                let c = unsafe { &*self.search_acquire(&k) };
                if !c.holds(&k) {
                    return Some(None);
                }
                let v0 = c.lock.version()?;
                if c.removed.load() {
                    return Some(None); // logically deleted: definitively absent
                }
                let v = c.value.as_ref().map(ValueSlot::read_acquire);
                c.lock.validate(v0).then_some(v)
            },
            || {
                // SAFETY: epoch-pinned.
                let c = unsafe { &*{ self.search(&k).1 } };
                if c.holds(&k) && !c.removed.load() {
                    c.value.as_ref().map(ValueSlot::read)
                } else {
                    None
                }
            },
        )
    }

    /// Presence check that never decodes the value slot (no fat-value
    /// clone-and-drop): key match + logical-delete flag only.
    pub fn contains(&self, k: &K) -> bool {
        let _g = flock_epoch::pin();
        flock_core::read_validated(
            || {
                // SAFETY: epoch-pinned.
                let c = unsafe { &*self.search_acquire(k) };
                Some(c.holds(k) && !c.removed.load())
            },
            || {
                // SAFETY: epoch-pinned.
                let c = unsafe { &*{ self.search(k).1 } };
                c.holds(k) && !c.removed.load()
            },
        )
    }

    /// Ordered range scan over the bounds (consistency contract:
    /// [`flock_api::OrderedMap::range`] — per-node-atomic pairs, weakly
    /// consistent across nodes). A removed node's `next` is frozen at
    /// unlink time and keeps pointing forward, so keys stay strictly
    /// increasing and each is reported at most once.
    pub fn range(&self, lo: std::ops::Bound<&K>, hi: std::ops::Bound<&K>) -> Vec<(K, V)> {
        use std::ops::Bound;
        let _g = flock_epoch::pin();
        let mut out = Vec::new();
        // SAFETY: epoch-pinned walk; head is immutable.
        let mut p = match lo {
            Bound::Unbounded => unsafe { (*self.head).next.load_acquire() },
            Bound::Included(k) => self.search_acquire(k),
            Bound::Excluded(k) => {
                let p = self.search_acquire(k);
                // SAFETY: epoch-pinned traversal result.
                if unsafe { &*p }.holds(k) {
                    unsafe { (*p).next.load_acquire() }
                } else {
                    p
                }
            }
        };
        loop {
            // SAFETY: epoch-pinned walk over live (or frozen-removed) nodes.
            let c = unsafe { &*p };
            if c.kind != KIND_NORMAL {
                break;
            }
            let key = c.key.clone().expect("normal node has a key");
            let past_hi = match hi {
                Bound::Unbounded => false,
                Bound::Included(h) => &key > h,
                Bound::Excluded(h) => &key >= h,
            };
            if past_hi {
                break;
            }
            if let Some(v) = Self::read_node_validated(c) {
                out.push((key, v));
            }
            p = c.next.load_acquire();
        }
        out
    }

    /// Native atomic update: replace the value stored under `k` in place —
    /// one idempotent slot store under the node's **own** lock. Returns
    /// `false` (storing nothing) if `k` is absent.
    ///
    /// The node's lock is the remove path's inner lock and the only place
    /// its `removed` flag (the logical-delete mark) is ever set, so holding
    /// it with `removed == false` pins "the key is present" for the whole
    /// thunk: readers see the old value or the new one, never absence.
    pub fn update(&self, k: K, v: V) -> bool {
        let _g = flock_epoch::pin();
        let mut backoff = Backoff::new();
        loop {
            let (_, curr) = self.search(&k);
            // SAFETY: epoch-pinned.
            let curr_ref = unsafe { &*curr };
            if !curr_ref.holds(&k) || curr_ref.removed.load() {
                return false;
            }
            let sp_curr = Sp(curr);
            let v2 = v.clone();
            match curr_ref.lock.try_lock(move || {
                // SAFETY: thunk runners hold epoch protection.
                let c = unsafe { sp_curr.as_ref() };
                if c.removed.load() {
                    return false; // logically deleted under us: re-check
                }
                c.value
                    .as_ref()
                    .expect("normal node has a value slot")
                    .set(v2.clone());
                true
            }) {
                Some(true) => return true,
                Some(false) => {}         // node vanished: re-check presence
                None => backoff.snooze(), // node lock busy
            }
        }
    }

    /// Element count (O(n); tests/diagnostics).
    pub fn len(&self) -> usize {
        let _g = flock_epoch::pin();
        let mut n = 0;
        // SAFETY: epoch-pinned walk.
        let mut p = unsafe { (*self.head).next.load() };
        while unsafe { &*p }.kind == KIND_NORMAL {
            n += 1;
            p = unsafe { &*p }.next.load();
        }
        n
    }

    /// Is the list empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ordered snapshot — single-threaded use.
    pub fn collect(&self) -> Vec<(K, V)> {
        let _g = flock_epoch::pin();
        let mut out = Vec::new();
        // SAFETY: epoch-pinned walk.
        let mut p = unsafe { (*self.head).next.load() };
        while unsafe { &*p }.kind == KIND_NORMAL {
            let n = unsafe { &*p };
            if let (Some(k), Some(v)) = (n.key.clone(), n.value.as_ref().map(ValueSlot::read)) {
                out.push((k, v));
            }
            p = n.next.load();
        }
        out
    }

    /// Quiescent invariant check: strictly sorted, no removed nodes linked.
    pub fn check_invariants(&self) {
        // SAFETY: quiescent per contract.
        unsafe {
            let mut p = (*self.head).next.load();
            let mut last: Option<K> = None;
            while (*p).kind == KIND_NORMAL {
                assert!(!(*p).removed.load(), "removed node reachable");
                let pk = (*p).key.clone().expect("normal node has a key");
                if let Some(lk) = &last {
                    assert!(lk < &pk, "keys out of order");
                }
                last = Some(pk);
                p = (*p).next.load();
            }
            assert_eq!(p, self.tail);
        }
    }
}

impl<K: Key, V: Value> Drop for LazyList<K, V> {
    fn drop(&mut self) {
        // SAFETY: exclusive access; retired nodes belong to the collector.
        unsafe {
            let mut p = self.head;
            while !p.is_null() {
                let next = (*p).next.load();
                let is_tail = p == self.tail;
                flock_epoch::free_now(p);
                if is_tail {
                    break;
                }
                p = next;
            }
        }
    }
}

impl<K: Key, V: Value> Map<K, V> for LazyList<K, V> {
    fn insert(&self, key: K, value: V) -> bool {
        LazyList::insert(self, key, value)
    }
    fn remove(&self, key: K) -> bool {
        LazyList::remove(self, key)
    }
    fn get(&self, key: K) -> Option<V> {
        LazyList::get(self, key)
    }
    fn contains(&self, key: K) -> bool {
        LazyList::contains(self, &key)
    }
    fn name(&self) -> &'static str {
        "lazylist"
    }
    fn update(&self, key: K, value: V) -> bool {
        LazyList::update(self, key, value)
    }
    fn has_atomic_update(&self) -> bool {
        true
    }
    fn len_approx(&self) -> Option<usize> {
        Some(self.count.get())
    }
}

impl<K: Key, V: Value> flock_api::OrderedMap<K, V> for LazyList<K, V> {
    fn range(&self, lo: std::ops::Bound<&K>, hi: std::ops::Bound<&K>) -> Vec<(K, V)> {
        LazyList::range(self, lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flock_api::testing as testutil;

    #[test]
    fn basic_ops() {
        testutil::both_modes(|| {
            let l: LazyList<u64, u64> = LazyList::new();
            assert!(l.insert(5, 50));
            assert!(!l.insert(5, 51));
            assert!(l.insert(1, 10));
            assert!(l.insert(9, 90));
            assert_eq!(l.collect(), vec![(1, 10), (5, 50), (9, 90)]);
            assert!(l.remove(5));
            assert!(!l.remove(5));
            assert_eq!(l.get(5), None);
            assert_eq!(l.get(9), Some(90));
            l.check_invariants();
        });
    }

    #[test]
    fn reinsert_after_remove() {
        testutil::both_modes(|| {
            let l: LazyList<u64, u64> = LazyList::new();
            for round in 0..10u64 {
                assert!(l.insert(42, round));
                assert_eq!(l.get(42), Some(round));
                assert!(l.remove(42));
                assert_eq!(l.get(42), None);
            }
            assert!(l.is_empty());
        });
    }

    #[test]
    fn native_update_in_place() {
        testutil::both_modes(|| {
            let l: LazyList<u64, u64> = LazyList::new();
            assert!(!l.update(1, 10), "update of an absent key refused");
            assert!(l.insert(1, 10));
            assert!(l.update(1, 11));
            assert_eq!(l.get(1), Some(11));
            assert_eq!(l.len(), 1, "update must not change the count");
            assert!(l.remove(1));
            assert!(!l.update(1, 12));
            l.check_invariants();
        });
    }

    #[test]
    fn oracle() {
        testutil::both_modes(|| {
            let l: LazyList<u64, u64> = LazyList::new();
            testutil::oracle_check(&l, 3_000, 64, 7);
            l.check_invariants();
        });
    }

    #[test]
    fn concurrent_partitioned() {
        testutil::both_modes(|| {
            let l: LazyList<u64, u64> = LazyList::new();
            testutil::partition_stress(&l, 4, 1_500);
            l.check_invariants();
        });
    }
}
