//! Sorted singly-linked *lazy list* with optimistic try-locks.
//!
//! The classic lazy-list design (Heller et al., OPODIS 2006), written with
//! Flock locks as in the paper's `lazylist` (§7): traversal takes no locks;
//! `insert` locks the predecessor; `remove` locks predecessor and victim,
//! marks the victim `removed` (logical delete) and splices it out (physical
//! delete). `get` is wait-free: it walks the list and checks the `removed`
//! flag of the matching node.

use flock_api::Map;
use flock_core::{Lock, Mutable, Sp, UpdateOnce};
use flock_sync::Backoff;

const KIND_NORMAL: u8 = 0;
const KIND_HEAD: u8 = 1;
const KIND_TAIL: u8 = 2;

struct Node {
    next: Mutable<*mut Node>,
    removed: UpdateOnce<bool>,
    key: u64,
    value: u64,
    lock: Lock,
    kind: u8,
}

impl Node {
    fn new(key: u64, value: u64, next: *mut Node, kind: u8) -> Self {
        Self {
            next: Mutable::new(next),
            removed: UpdateOnce::new(false),
            key,
            value,
            lock: Lock::new(),
            kind,
        }
    }

    #[inline]
    fn at_or_after(&self, k: u64) -> bool {
        match self.kind {
            KIND_TAIL => true,
            KIND_HEAD => false,
            _ => self.key >= k,
        }
    }
}

/// Sorted singly-linked lazy list map.
pub struct LazyList {
    head: *mut Node,
    tail: *mut Node,
}

// SAFETY: mutation via Flock locks + epoch reclamation; head/tail immutable.
unsafe impl Send for LazyList {}
unsafe impl Sync for LazyList {}

impl Default for LazyList {
    fn default() -> Self {
        Self::new()
    }
}

impl LazyList {
    /// An empty list.
    pub fn new() -> Self {
        let tail = flock_epoch::alloc(Node::new(0, 0, std::ptr::null_mut(), KIND_TAIL));
        let head = flock_epoch::alloc(Node::new(0, 0, tail, KIND_HEAD));
        Self { head, tail }
    }

    /// Unlocked traversal: returns `(pred, curr)` with
    /// `pred.key < k <= curr.key` (sentinels at the ends).
    fn search(&self, k: u64) -> (*mut Node, *mut Node) {
        let mut pred = self.head;
        // SAFETY: epoch-pinned caller; nodes reclaimed via collector.
        let mut curr = unsafe { (*pred).next.load() };
        while !unsafe { &*curr }.at_or_after(k) {
            pred = curr;
            curr = unsafe { &*curr }.next.load();
        }
        (pred, curr)
    }

    /// Insert; `false` if present.
    pub fn insert(&self, k: u64, v: u64) -> bool {
        let _g = flock_epoch::pin();
        let mut backoff = Backoff::new();
        loop {
            let (pred, curr) = self.search(k);
            // SAFETY: epoch-pinned.
            let curr_ref = unsafe { &*curr };
            if curr_ref.kind == KIND_NORMAL && curr_ref.key == k && !curr_ref.removed.load() {
                return false;
            }
            let (sp_pred, sp_curr) = (Sp(pred), Sp(curr));
            // SAFETY: epoch-pinned.
            match unsafe { &*pred }.lock.try_lock(move || {
                // SAFETY: epoch protection via owner pin / helper adoption.
                let p = unsafe { sp_pred.as_ref() };
                if p.removed.load() || p.next.load() != sp_curr.ptr() {
                    return false; // validate
                }
                let newn = flock_core::alloc(|| Node::new(k, v, sp_curr.ptr(), KIND_NORMAL));
                p.next.store(newn);
                true
            }) {
                Some(true) => return true,
                Some(false) => {}         // validation failed: re-search now
                None => backoff.snooze(), // predecessor lock busy
            }
        }
    }

    /// Remove; `false` if absent.
    pub fn remove(&self, k: u64) -> bool {
        let _g = flock_epoch::pin();
        let mut backoff = Backoff::new();
        loop {
            let (pred, curr) = self.search(k);
            // SAFETY: epoch-pinned.
            let curr_ref = unsafe { &*curr };
            if curr_ref.kind != KIND_NORMAL || curr_ref.key != k || curr_ref.removed.load() {
                return false;
            }
            let (sp_pred, sp_curr) = (Sp(pred), Sp(curr));
            // SAFETY: epoch-pinned.
            match unsafe { &*pred }.lock.try_lock(move || {
                // SAFETY: see insert.
                let c = unsafe { sp_curr.as_ref() };
                c.lock.try_lock(move || {
                    // SAFETY: as above.
                    let p = unsafe { sp_pred.as_ref() };
                    let c = unsafe { sp_curr.as_ref() };
                    if p.removed.load() || p.next.load() != sp_curr.ptr() || c.removed.load() {
                        return false; // validate
                    }
                    c.removed.store(true); // logical delete
                    p.next.store(c.next.load()); // physical delete
                    // SAFETY: unlinked above; idempotent retire fires once.
                    unsafe { flock_core::retire(sp_curr.ptr()) };
                    true
                })
            }) {
                Some(Some(true)) => return true,
                Some(Some(false)) => {} // validation failed: re-search now
                _ => backoff.snooze(),  // predecessor or victim lock busy
            }
        }
    }

    /// Wait-free lookup.
    pub fn get(&self, k: u64) -> Option<u64> {
        let _g = flock_epoch::pin();
        let (_, curr) = self.search(k);
        // SAFETY: epoch-pinned.
        let c = unsafe { &*curr };
        (c.kind == KIND_NORMAL && c.key == k && !c.removed.load()).then_some(c.value)
    }

    /// Element count (O(n); tests/diagnostics).
    pub fn len(&self) -> usize {
        let _g = flock_epoch::pin();
        let mut n = 0;
        // SAFETY: epoch-pinned walk.
        let mut p = unsafe { (*self.head).next.load() };
        while unsafe { &*p }.kind == KIND_NORMAL {
            n += 1;
            p = unsafe { &*p }.next.load();
        }
        n
    }

    /// Is the list empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ordered snapshot — single-threaded use.
    pub fn collect(&self) -> Vec<(u64, u64)> {
        let _g = flock_epoch::pin();
        let mut out = Vec::new();
        // SAFETY: epoch-pinned walk.
        let mut p = unsafe { (*self.head).next.load() };
        while unsafe { &*p }.kind == KIND_NORMAL {
            let n = unsafe { &*p };
            out.push((n.key, n.value));
            p = n.next.load();
        }
        out
    }

    /// Quiescent invariant check: strictly sorted, no removed nodes linked.
    pub fn check_invariants(&self) {
        // SAFETY: quiescent per contract.
        unsafe {
            let mut p = (*self.head).next.load();
            let mut last: Option<u64> = None;
            while (*p).kind == KIND_NORMAL {
                assert!(!(*p).removed.load(), "removed node reachable");
                if let Some(lk) = last {
                    assert!(lk < (*p).key, "keys out of order");
                }
                last = Some((*p).key);
                p = (*p).next.load();
            }
            assert_eq!(p, self.tail);
        }
    }
}

impl Drop for LazyList {
    fn drop(&mut self) {
        // SAFETY: exclusive access; retired nodes belong to the collector.
        unsafe {
            let mut p = self.head;
            while !p.is_null() {
                let next = (*p).next.load();
                let is_tail = p == self.tail;
                flock_epoch::free_now(p);
                if is_tail {
                    break;
                }
                p = next;
            }
        }
    }
}

impl Map<u64, u64> for LazyList {
    fn insert(&self, key: u64, value: u64) -> bool {
        LazyList::insert(self, key, value)
    }
    fn remove(&self, key: u64) -> bool {
        LazyList::remove(self, key)
    }
    fn get(&self, key: u64) -> Option<u64> {
        LazyList::get(self, key)
    }
    fn name(&self) -> &'static str {
        "lazylist"
    }
    fn len_approx(&self) -> Option<usize> {
        Some(self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flock_api::testing as testutil;

    #[test]
    fn basic_ops() {
        testutil::both_modes(|| {
            let l = LazyList::new();
            assert!(l.insert(5, 50));
            assert!(!l.insert(5, 51));
            assert!(l.insert(1, 10));
            assert!(l.insert(9, 90));
            assert_eq!(l.collect(), vec![(1, 10), (5, 50), (9, 90)]);
            assert!(l.remove(5));
            assert!(!l.remove(5));
            assert_eq!(l.get(5), None);
            assert_eq!(l.get(9), Some(90));
            l.check_invariants();
        });
    }

    #[test]
    fn reinsert_after_remove() {
        testutil::both_modes(|| {
            let l = LazyList::new();
            for round in 0..10u64 {
                assert!(l.insert(42, round));
                assert_eq!(l.get(42), Some(round));
                assert!(l.remove(42));
                assert_eq!(l.get(42), None);
            }
            assert!(l.is_empty());
        });
    }

    #[test]
    fn oracle() {
        testutil::both_modes(|| {
            let l = LazyList::new();
            testutil::oracle_check(&l, 3_000, 64, 7);
            l.check_invariants();
        });
    }

    #[test]
    fn concurrent_partitioned() {
        testutil::both_modes(|| {
            let l = LazyList::new();
            testutil::partition_stress(&l, 4, 1_500);
            l.check_invariants();
        });
    }
}
