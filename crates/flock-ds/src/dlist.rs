//! Sorted doubly-linked list with optimistic fine-grained try-locks —
//! the paper's running example (Algorithm 1).
//!
//! Each link carries a key, a value, `next`/`prev` mutable pointers, a
//! `removed` update-once flag, and a lock. Traversal takes no locks; an
//! update locks only the predecessor (insert) or predecessor + victim
//! (remove), validates that the neighborhood is unchanged, and splices. The
//! doubly-linked splice (`prev.next = n; next.prev = n`) is the two-word
//! update that is painful to make lock-free by hand and trivial here.

use flock_api::Map;
use flock_core::{Lock, Mutable, Sp, UpdateOnce};
use flock_sync::Backoff;

/// Sentinel markers so head/tail need no special key values.
const KIND_NORMAL: u8 = 0;
const KIND_HEAD: u8 = 1;
const KIND_TAIL: u8 = 2;

struct Link {
    next: Mutable<*mut Link>,
    prev: Mutable<*mut Link>,
    removed: UpdateOnce<bool>,
    key: u64,
    value: u64,
    lock: Lock,
    kind: u8,
}

impl Link {
    fn new(key: u64, value: u64, next: *mut Link, prev: *mut Link, kind: u8) -> Self {
        Self {
            next: Mutable::new(next),
            prev: Mutable::new(prev),
            removed: UpdateOnce::new(false),
            key,
            value,
            lock: Lock::new(),
            kind,
        }
    }

    /// Does this link's key order at-or-after `k`? Tail orders after
    /// everything, head before everything.
    #[inline]
    fn at_or_after(&self, k: u64) -> bool {
        match self.kind {
            KIND_TAIL => true,
            KIND_HEAD => false,
            _ => self.key >= k,
        }
    }
}

/// Sorted doubly-linked list map (paper Algorithm 1).
///
/// ```
/// use flock_ds::dlist::DList;
/// use flock_api::Map;
/// let l = DList::new();
/// assert!(l.insert(2, 20));
/// assert!(l.insert(1, 10));
/// assert_eq!(l.get(2), Some(20));
/// assert!(l.remove(1));
/// assert_eq!(l.get(1), None);
/// ```
pub struct DList {
    head: *mut Link,
    tail: *mut Link,
}

// SAFETY: all mutation is via Flock locks + epoch reclamation; the raw head
// and tail pointers are immutable after construction.
unsafe impl Send for DList {}
unsafe impl Sync for DList {}

impl Default for DList {
    fn default() -> Self {
        Self::new()
    }
}

impl DList {
    /// An empty list.
    pub fn new() -> Self {
        let head = flock_epoch::alloc(Link::new(
            0,
            0,
            std::ptr::null_mut(),
            std::ptr::null_mut(),
            KIND_HEAD,
        ));
        let tail = flock_epoch::alloc(Link::new(0, 0, std::ptr::null_mut(), head, KIND_TAIL));
        // SAFETY: fresh, unshared.
        unsafe { (*head).next.store(tail) };
        Self { head, tail }
    }

    /// First link whose key orders at-or-after `k` (paper's `find_link`).
    /// Lock-free traversal; loads are unlogged because we are outside locks.
    fn find_link(&self, k: u64) -> *mut Link {
        // SAFETY: head is immutable; links are epoch-protected (caller pins).
        let mut lnk = unsafe { (*self.head).next.load() };
        // SAFETY: as above — every loaded link is protected by the pin.
        while !unsafe { &*lnk }.at_or_after(k) {
            lnk = unsafe { &*lnk }.next.load();
        }
        lnk
    }

    /// Insert; `false` if the key is already present.
    pub fn insert(&self, k: u64, v: u64) -> bool {
        let _g = flock_epoch::pin();
        let mut backoff = Backoff::new();
        loop {
            let next = self.find_link(k);
            // SAFETY: epoch-pinned traversal result.
            let next_ref = unsafe { &*next };
            if next_ref.kind == KIND_NORMAL && next_ref.key == k {
                return false; // already there
            }
            let prev = next_ref.prev.load();
            // SAFETY: prev read from a live link; epoch-pinned.
            let prev_ref = unsafe { &*prev };
            let prev_ok =
                prev_ref.kind == KIND_HEAD || (prev_ref.kind == KIND_NORMAL && prev_ref.key < k);
            if prev_ok {
                let (sp_prev, sp_next) = (Sp(prev), Sp(next));
                match prev_ref.lock.try_lock(move || {
                    // SAFETY: thunk runs under epoch protection (owner's pin
                    // or helper's adopted epoch); links are retired through
                    // the collector, so these derefs are valid.
                    let (p, n) = unsafe { (sp_prev.as_ref(), sp_next.as_ref()) };
                    if p.removed.load() || p.next.load() != sp_next.ptr() {
                        return false; // validate
                    }
                    let newl = flock_core::alloc(|| {
                        Link::new(k, v, sp_next.ptr(), sp_prev.ptr(), KIND_NORMAL)
                    });
                    p.next.store(newl); // splice in
                    n.prev.store(newl);
                    true
                }) {
                    Some(true) => return true,
                    // Validation failed: the neighborhood changed under us —
                    // a fresh traversal has new information, retry at once.
                    Some(false) => {}
                    // Lock busy (holder already helped in lock-free mode):
                    // ease off before contending again.
                    None => backoff.snooze(),
                }
            }
        }
    }

    /// Remove; `false` if the key was not present.
    pub fn remove(&self, k: u64) -> bool {
        let _g = flock_epoch::pin();
        let mut backoff = Backoff::new();
        loop {
            let lnk = self.find_link(k);
            // SAFETY: epoch-pinned traversal result.
            let lnk_ref = unsafe { &*lnk };
            if lnk_ref.kind != KIND_NORMAL || lnk_ref.key != k {
                return false; // not found
            }
            let prev = lnk_ref.prev.load();
            // SAFETY: epoch-pinned.
            let prev_ref = unsafe { &*prev };
            let (sp_prev, sp_lnk) = (Sp(prev), Sp(lnk));
            match prev_ref.lock.try_lock(move || {
                // SAFETY: see insert's thunk.
                let l = unsafe { sp_lnk.as_ref() };
                l.lock.try_lock(move || {
                    // SAFETY: as above.
                    let p = unsafe { sp_prev.as_ref() };
                    let l = unsafe { sp_lnk.as_ref() };
                    if p.removed.load() || p.next.load() != sp_lnk.ptr() {
                        return false; // validate
                    }
                    let next = l.next.load();
                    l.removed.store(true);
                    p.next.store(next); // splice out
                    // SAFETY: next is a live link (reachable until now).
                    unsafe { (*next).prev.store(sp_prev.ptr()) };
                    // SAFETY: l is unlinked above; retired exactly once
                    // thanks to the idempotent retire.
                    unsafe { flock_core::retire(sp_lnk.ptr()) };
                    true
                })
            }) {
                Some(Some(true)) => return true,
                Some(Some(false)) => {} // validation failed: re-traverse now
                _ => backoff.snooze(),  // predecessor or victim lock busy
            }
        }
    }

    /// Lookup (wait-free traversal, no locks — paper's `find`).
    pub fn get(&self, k: u64) -> Option<u64> {
        let _g = flock_epoch::pin();
        let lnk = self.find_link(k);
        // SAFETY: epoch-pinned traversal result.
        let l = unsafe { &*lnk };
        (l.kind == KIND_NORMAL && l.key == k).then_some(l.value)
    }

    /// Number of elements (O(n) walk; for tests and diagnostics).
    pub fn len(&self) -> usize {
        let _g = flock_epoch::pin();
        let mut n = 0;
        // SAFETY: epoch-pinned walk over live links.
        let mut p = unsafe { (*self.head).next.load() };
        while unsafe { &*p }.kind == KIND_NORMAL {
            n += 1;
            p = unsafe { &*p }.next.load();
        }
        n
    }

    /// Is the list empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the (key, value) pairs in order — single-threaded use.
    pub fn collect(&self) -> Vec<(u64, u64)> {
        let _g = flock_epoch::pin();
        let mut out = Vec::new();
        // SAFETY: epoch-pinned walk.
        let mut p = unsafe { (*self.head).next.load() };
        while unsafe { &*p }.kind == KIND_NORMAL {
            let l = unsafe { &*p };
            out.push((l.key, l.value));
            p = l.next.load();
        }
        out
    }

    /// Check structural invariants: sorted keys, consistent back-pointers.
    /// Call only while quiescent.
    pub fn check_invariants(&self) {
        let _g = flock_epoch::pin();
        // SAFETY: quiescent per contract.
        unsafe {
            let mut p = self.head;
            let mut last_key: Option<u64> = None;
            loop {
                let next = (*p).next.load();
                assert_eq!((*next).prev.load(), p, "broken back-pointer");
                if (*next).kind == KIND_TAIL {
                    break;
                }
                assert!(!(*next).removed.load(), "removed link still reachable");
                if let Some(lk) = last_key {
                    assert!(lk < (*next).key, "keys out of order");
                }
                last_key = Some((*next).key);
                p = next;
            }
        }
    }
}

impl Drop for DList {
    fn drop(&mut self) {
        // Exclusive access: free all still-linked nodes directly. Retired
        // (unlinked) nodes are owned by the epoch collector.
        // SAFETY: &mut self implies no concurrent users.
        unsafe {
            let mut p = self.head;
            while !p.is_null() {
                let next = (*p).next.load();
                flock_epoch::free_now(p);
                if p == self.tail {
                    break;
                }
                p = next;
            }
        }
    }
}

impl Map<u64, u64> for DList {
    fn insert(&self, key: u64, value: u64) -> bool {
        DList::insert(self, key, value)
    }
    fn remove(&self, key: u64) -> bool {
        DList::remove(self, key)
    }
    fn get(&self, key: u64) -> Option<u64> {
        DList::get(self, key)
    }
    fn name(&self) -> &'static str {
        "dlist"
    }
    fn len_approx(&self) -> Option<usize> {
        Some(self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flock_api::testing as testutil;

    #[test]
    fn basic_ops() {
        testutil::both_modes(|| {
            let l = DList::new();
            assert_eq!(l.get(5), None);
            assert!(l.insert(5, 50));
            assert!(!l.insert(5, 51), "duplicate insert must fail");
            assert_eq!(l.get(5), Some(50));
            assert!(l.insert(3, 30));
            assert!(l.insert(7, 70));
            assert_eq!(l.collect(), vec![(3, 30), (5, 50), (7, 70)]);
            assert!(l.remove(5));
            assert!(!l.remove(5));
            assert_eq!(l.collect(), vec![(3, 30), (7, 70)]);
            l.check_invariants();
        });
    }

    #[test]
    fn boundary_keys() {
        testutil::both_modes(|| {
            let l = DList::new();
            assert!(l.insert(0, 1));
            assert!(l.insert(u64::MAX, 2));
            assert_eq!(l.get(0), Some(1));
            assert_eq!(l.get(u64::MAX), Some(2));
            assert!(l.remove(0));
            assert!(l.remove(u64::MAX));
            assert!(l.is_empty());
        });
    }

    #[test]
    fn oracle() {
        testutil::both_modes(|| {
            let l = DList::new();
            testutil::oracle_check(&l, 3_000, 64, 42);
            l.check_invariants();
        });
    }

    #[test]
    fn concurrent_partitioned() {
        testutil::both_modes(|| {
            let l = DList::new();
            testutil::partition_stress(&l, 4, 1_500);
            l.check_invariants();
        });
    }

    #[test]
    fn drop_reclaims_without_crash() {
        testutil::exclusive(|| {
            let l = DList::new();
            for i in 0..100 {
                l.insert(i, i);
            }
            for i in 0..50 {
                l.remove(i * 2);
            }
            drop(l);
            flock_epoch::flush_all();
        });
    }
}
