//! Sorted doubly-linked list with optimistic fine-grained try-locks —
//! the paper's running example (Algorithm 1), generic over `(K, V)`.
//!
//! Each link carries a key, a value, `next`/`prev` mutable pointers, a
//! `removed` update-once flag, and a lock. Traversal takes no locks; an
//! update locks only the predecessor (insert) or predecessor + victim
//! (remove), validates that the neighborhood is unchanged, and splices. The
//! doubly-linked splice (`prev.next = n; next.prev = n`) is the two-word
//! update that is painful to make lock-free by hand and trivial here.
//!
//! Keys and values are cloned into nodes (`K: Clone`, and `V` through the
//! `ValueRepr` layer — fat values ride inside the epoch-reclaimed link
//! allocation). Sentinel links carry no key/value (`None`).
//!
//! Note on thunk results: thunks communicate **only** through their boolean
//! return value and the shared structure. Capturing a pointer to the
//! caller's stack would be a use-after-return hazard, because a helper can
//! still be replaying the thunk after the owner's call has returned — the
//! same reason the paper's C++ lambdas must capture by value.

use flock_api::{Key, Map, Value};
use flock_core::{Admission, Lock, Mutable, Sp, UpdateOnce, ValueSlot};
use flock_sync::{ApproxLen, Backoff};

/// Sentinel markers so head/tail need no special key values.
const KIND_NORMAL: u8 = 0;
const KIND_HEAD: u8 = 1;
const KIND_TAIL: u8 = 2;

struct Link<K: Key, V: Value> {
    next: Mutable<*mut Link<K, V>>,
    prev: Mutable<*mut Link<K, V>>,
    removed: UpdateOnce<bool>,
    /// `None` only on the head/tail sentinels.
    key: Option<K>,
    /// Lock-word-adjacent value slot (`None` only on sentinels): mutable in
    /// place under this link's own lock (native `update`), snapshot-readable
    /// without it.
    value: Option<ValueSlot<V>>,
    lock: Lock,
    kind: u8,
}

impl<K: Key, V: Value> Link<K, V> {
    fn new(
        key: Option<K>,
        value: Option<V>,
        next: *mut Link<K, V>,
        prev: *mut Link<K, V>,
        kind: u8,
        admission: Admission,
    ) -> Self {
        Self {
            next: Mutable::new(next),
            prev: Mutable::new(prev),
            removed: UpdateOnce::new(false),
            key,
            value: value.map(ValueSlot::new),
            lock: Lock::new_with(admission),
            kind,
        }
    }

    /// Does this link's key order at-or-after `k`? Tail orders after
    /// everything, head before everything.
    #[inline]
    fn at_or_after(&self, k: &K) -> bool {
        match self.kind {
            KIND_TAIL => true,
            KIND_HEAD => false,
            _ => self.key.as_ref().is_some_and(|x| x >= k),
        }
    }

    /// Is this a normal link holding exactly `k`?
    #[inline]
    fn holds(&self, k: &K) -> bool {
        self.kind == KIND_NORMAL && self.key.as_ref() == Some(k)
    }
}

/// Sorted doubly-linked list map (paper Algorithm 1).
///
/// ```
/// use flock_ds::dlist::DList;
/// use flock_api::Map;
/// let l: DList<u64, u64> = DList::new();
/// assert!(l.insert(2, 20));
/// assert!(l.insert(1, 10));
/// assert_eq!(l.get(2), Some(20));
/// assert!(l.remove(1));
/// assert_eq!(l.get(1), None);
/// ```
pub struct DList<K: Key, V: Value> {
    head: *mut Link<K, V>,
    tail: *mut Link<K, V>,
    /// Maintained element count backing `len_approx` (bumped outside the
    /// thunks: exactly one caller sees `Some(true)` per applied op).
    count: ApproxLen,
    /// Admission policy stamped on every link lock (fixed at construction).
    admission: Admission,
}

// SAFETY: all mutation is via Flock locks + epoch reclamation; the raw head
// and tail pointers are immutable after construction.
unsafe impl<K: Key, V: Value> Send for DList<K, V> {}
unsafe impl<K: Key, V: Value> Sync for DList<K, V> {}

impl<K: Key, V: Value> Default for DList<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Key, V: Value> DList<K, V> {
    /// An empty list using the process-default admission policy.
    pub fn new() -> Self {
        Self::with_admission(flock_core::default_admission())
    }

    /// An empty list whose link locks all use `admission` (see
    /// [`flock_core::admission`]).
    pub fn with_admission(admission: Admission) -> Self {
        let head = flock_epoch::alloc(Link::new(
            None,
            None,
            std::ptr::null_mut(),
            std::ptr::null_mut(),
            KIND_HEAD,
            admission,
        ));
        let tail = flock_epoch::alloc(Link::new(
            None,
            None,
            std::ptr::null_mut(),
            head,
            KIND_TAIL,
            admission,
        ));
        // SAFETY: fresh, unshared.
        unsafe { (*head).next.store(tail) };
        Self {
            head,
            tail,
            count: ApproxLen::new(),
            admission,
        }
    }

    /// First link whose key orders at-or-after `k` (paper's `find_link`).
    /// Lock-free traversal; loads are unlogged because we are outside locks.
    fn find_link(&self, k: &K) -> *mut Link<K, V> {
        // SAFETY: head is immutable; links are epoch-protected (caller pins).
        let mut lnk = unsafe { (*self.head).next.load() };
        // SAFETY: as above — every loaded link is protected by the pin.
        while !unsafe { &*lnk }.at_or_after(k) {
            lnk = unsafe { &*lnk }.next.load();
        }
        lnk
    }

    /// Optimistic [`DList::find_link`]: plain `Acquire` pointer loads, no
    /// thunk-log traffic. Caller must be epoch-pinned and outside any thunk
    /// (the [`flock_core::read_validated`] discipline).
    fn find_link_acquire(&self, k: &K) -> *mut Link<K, V> {
        // SAFETY: identical to find_link — the pin covers every deref.
        let mut lnk = unsafe { (*self.head).next.load_acquire() };
        while !unsafe { &*lnk }.at_or_after(k) {
            lnk = unsafe { &*lnk }.next.load_acquire();
        }
        lnk
    }

    /// Version-validated snapshot of one link's (presence, value) pair,
    /// under the link's **own** lock — the same lock `remove` sets the
    /// `removed` flag under and `update` stores through, so an unchanged
    /// version across the two reads proves they were simultaneously true.
    /// `None` means the link was removed (or kept failing validation and
    /// the committed re-check found it removed).
    fn read_link_validated(l: &Link<K, V>) -> Option<V> {
        flock_core::read_validated(
            || {
                let v0 = l.lock.version()?;
                if l.removed.load() {
                    // Monotonic flag: a true read is definitive, no
                    // validation needed to conclude absence.
                    return Some(None);
                }
                let v = l.value.as_ref().map(ValueSlot::read_acquire);
                l.lock.validate(v0).then_some(v)
            },
            || (!l.removed.load()).then(|| l.value.as_ref().map(ValueSlot::read))?,
        )
    }

    /// Insert; `false` if the key is already present.
    pub fn insert(&self, k: K, v: V) -> bool {
        let _g = flock_epoch::pin();
        let mut backoff = Backoff::new();
        loop {
            let next = self.find_link(&k);
            // SAFETY: epoch-pinned traversal result.
            let next_ref = unsafe { &*next };
            if next_ref.holds(&k) {
                return false; // already there
            }
            let prev = next_ref.prev.load();
            // SAFETY: prev read from a live link; epoch-pinned.
            let prev_ref = unsafe { &*prev };
            let prev_ok = prev_ref.kind == KIND_HEAD
                || (prev_ref.kind == KIND_NORMAL && prev_ref.key.as_ref().is_some_and(|x| x < &k));
            if prev_ok {
                let (sp_prev, sp_next) = (Sp(prev), Sp(next));
                let (k2, v2) = (k.clone(), v.clone());
                let admission = self.admission;
                match prev_ref.lock.try_lock(move || {
                    // SAFETY: thunk runs under epoch protection (owner's pin
                    // or helper's adopted epoch); links are retired through
                    // the collector, so these derefs are valid.
                    let (p, n) = unsafe { (sp_prev.as_ref(), sp_next.as_ref()) };
                    if p.removed.load() || p.next.load() != sp_next.ptr() {
                        return false; // validate
                    }
                    let newl = flock_core::alloc(|| {
                        Link::new(
                            Some(k2.clone()),
                            Some(v2.clone()),
                            sp_next.ptr(),
                            sp_prev.ptr(),
                            KIND_NORMAL,
                            admission,
                        )
                    });
                    p.next.store(newl); // splice in
                    n.prev.store(newl);
                    true
                }) {
                    Some(true) => {
                        self.count.inc();
                        return true;
                    }
                    // Validation failed: the neighborhood changed under us —
                    // a fresh traversal has new information, retry at once.
                    Some(false) => {}
                    // Lock busy (holder already helped in lock-free mode):
                    // ease off before contending again.
                    None => backoff.snooze(),
                }
            }
        }
    }

    /// Remove; `false` if the key was not present.
    pub fn remove(&self, k: K) -> bool {
        let _g = flock_epoch::pin();
        let mut backoff = Backoff::new();
        loop {
            let lnk = self.find_link(&k);
            // SAFETY: epoch-pinned traversal result.
            let lnk_ref = unsafe { &*lnk };
            if !lnk_ref.holds(&k) {
                return false; // not found
            }
            let prev = lnk_ref.prev.load();
            // SAFETY: epoch-pinned.
            let prev_ref = unsafe { &*prev };
            let (sp_prev, sp_lnk) = (Sp(prev), Sp(lnk));
            match prev_ref.lock.try_lock(move || {
                // SAFETY: see insert's thunk.
                let l = unsafe { sp_lnk.as_ref() };
                l.lock.try_lock(move || {
                    // SAFETY: as above.
                    let p = unsafe { sp_prev.as_ref() };
                    let l = unsafe { sp_lnk.as_ref() };
                    if p.removed.load() || p.next.load() != sp_lnk.ptr() {
                        return false; // validate
                    }
                    let next = l.next.load();
                    l.removed.store(true);
                    p.next.store(next); // splice out
                    // SAFETY: next is a live link (reachable until now).
                    unsafe { (*next).prev.store(sp_prev.ptr()) };
                    // SAFETY: l is unlinked above; retired exactly once
                    // thanks to the idempotent retire.
                    unsafe { flock_core::retire(sp_lnk.ptr()) };
                    true
                })
            }) {
                Some(Some(true)) => {
                    self.count.dec();
                    return true;
                }
                Some(Some(false)) => {} // validation failed: re-traverse now
                _ => backoff.snooze(),  // predecessor or victim lock busy
            }
        }
    }

    /// Lookup (wait-free traversal, no locks — paper's `find`). The value
    /// snapshot is version-validated against the link's own lock
    /// ([`flock_core::read_validated`]); absence needs no validation — the
    /// unlocked traversal is the committed path's read too.
    pub fn get(&self, k: K) -> Option<V> {
        let _g = flock_epoch::pin();
        flock_core::read_validated(
            || {
                // SAFETY: epoch-pinned traversal result.
                let l = unsafe { &*self.find_link_acquire(&k) };
                if !l.holds(&k) {
                    return Some(None);
                }
                let v0 = l.lock.version()?;
                if l.removed.load() {
                    return None; // unlinked mid-read: re-traverse
                }
                let v = l.value.as_ref().map(ValueSlot::read_acquire);
                l.lock.validate(v0).then_some(v)
            },
            || {
                // SAFETY: epoch-pinned traversal result.
                let l = unsafe { &*self.find_link(&k) };
                if l.holds(&k) {
                    l.value.as_ref().map(ValueSlot::read)
                } else {
                    None
                }
            },
        )
    }

    /// Presence check that never materializes the value: the traversal
    /// stops at key equality and the value slot is never decoded (a fat
    /// `Indirect` value would otherwise be cloned just to be dropped).
    pub fn contains(&self, k: &K) -> bool {
        let _g = flock_epoch::pin();
        flock_core::read_validated(
            || {
                // SAFETY: epoch-pinned traversal result.
                let l = unsafe { &*self.find_link_acquire(k) };
                Some(l.holds(k) && !l.removed.load())
            },
            || {
                // SAFETY: epoch-pinned traversal result.
                let l = unsafe { &*self.find_link(k) };
                l.holds(k) && !l.removed.load()
            },
        )
    }

    /// Ordered range scan over `[lo, hi]` (see
    /// [`flock_api::OrderedMap::range`] for the consistency contract:
    /// per-link-atomic pairs, validated against each link's own lock;
    /// cross-link the scan is weakly consistent).
    ///
    /// Walking `next` pointers is safe past concurrent splices: a removed
    /// link's `next` is frozen at unlink time and keeps pointing at
    /// larger-keyed links, so keys stay strictly increasing and each is
    /// reported at most once.
    pub fn range(&self, lo: std::ops::Bound<&K>, hi: std::ops::Bound<&K>) -> Vec<(K, V)> {
        use std::ops::Bound;
        let _g = flock_epoch::pin();
        let mut out = Vec::new();
        // SAFETY: epoch-pinned walk; head is immutable.
        let mut p = match lo {
            Bound::Unbounded => unsafe { (*self.head).next.load_acquire() },
            Bound::Included(k) => self.find_link_acquire(k),
            Bound::Excluded(k) => {
                let p = self.find_link_acquire(k);
                // SAFETY: epoch-pinned traversal result.
                if unsafe { &*p }.holds(k) {
                    unsafe { (*p).next.load_acquire() }
                } else {
                    p
                }
            }
        };
        loop {
            // SAFETY: epoch-pinned walk over live (or frozen-removed) links.
            let l = unsafe { &*p };
            if l.kind != KIND_NORMAL {
                break;
            }
            let key = l.key.clone().expect("normal link has a key");
            let past_hi = match hi {
                Bound::Unbounded => false,
                Bound::Included(h) => &key > h,
                Bound::Excluded(h) => &key >= h,
            };
            if past_hi {
                break;
            }
            if let Some(v) = Self::read_link_validated(l) {
                out.push((key, v));
            }
            p = l.next.load_acquire();
        }
        out
    }

    /// Native atomic update: replace the value stored under `k` in place —
    /// one idempotent slot store under the link's **own** lock. Returns
    /// `false` (storing nothing) if `k` is absent.
    ///
    /// The link's lock is the remove path's inner lock and the only place
    /// its `removed` flag is ever set, so holding it with `removed == false`
    /// pins "the key is present" for the whole thunk: concurrent readers
    /// see the old value or the new one, never absence or a third value.
    pub fn update(&self, k: K, v: V) -> bool {
        let _g = flock_epoch::pin();
        let mut backoff = Backoff::new();
        loop {
            let lnk = self.find_link(&k);
            // SAFETY: epoch-pinned traversal result.
            let lnk_ref = unsafe { &*lnk };
            if !lnk_ref.holds(&k) {
                return false;
            }
            let sp_lnk = Sp(lnk);
            let v2 = v.clone();
            match lnk_ref.lock.try_lock(move || {
                // SAFETY: thunk runners hold epoch protection.
                let l = unsafe { sp_lnk.as_ref() };
                if l.removed.load() {
                    return false; // unlinked under us: re-traverse
                }
                l.value
                    .as_ref()
                    .expect("normal link has a value slot")
                    .set(v2.clone());
                true
            }) {
                Some(true) => return true,
                Some(false) => {}         // link vanished: re-check presence
                None => backoff.snooze(), // link lock busy
            }
        }
    }

    /// Number of elements (O(n) walk; for tests and diagnostics — the
    /// maintained count behind [`Map::len_approx`] is O(stripes)).
    pub fn len(&self) -> usize {
        let _g = flock_epoch::pin();
        let mut n = 0;
        // SAFETY: epoch-pinned walk over live links.
        let mut p = unsafe { (*self.head).next.load() };
        while unsafe { &*p }.kind == KIND_NORMAL {
            n += 1;
            p = unsafe { &*p }.next.load();
        }
        n
    }

    /// Is the list empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the (key, value) pairs in order — single-threaded use.
    pub fn collect(&self) -> Vec<(K, V)> {
        let _g = flock_epoch::pin();
        let mut out = Vec::new();
        // SAFETY: epoch-pinned walk.
        let mut p = unsafe { (*self.head).next.load() };
        while unsafe { &*p }.kind == KIND_NORMAL {
            let l = unsafe { &*p };
            if let (Some(k), Some(v)) = (l.key.clone(), l.value.as_ref().map(ValueSlot::read)) {
                out.push((k, v));
            }
            p = l.next.load();
        }
        out
    }

    /// Check structural invariants: sorted keys, consistent back-pointers.
    /// Call only while quiescent.
    pub fn check_invariants(&self) {
        let _g = flock_epoch::pin();
        // SAFETY: quiescent per contract.
        unsafe {
            let mut p = self.head;
            let mut last_key: Option<K> = None;
            loop {
                let next = (*p).next.load();
                assert_eq!((*next).prev.load(), p, "broken back-pointer");
                if (*next).kind == KIND_TAIL {
                    break;
                }
                assert!(!(*next).removed.load(), "removed link still reachable");
                let nk = (*next).key.clone().expect("normal link has a key");
                if let Some(lk) = &last_key {
                    assert!(lk < &nk, "keys out of order");
                }
                last_key = Some(nk);
                p = next;
            }
        }
    }
}

impl<K: Key, V: Value> Drop for DList<K, V> {
    fn drop(&mut self) {
        // Exclusive access: free all still-linked nodes directly. Retired
        // (unlinked) nodes are owned by the epoch collector.
        // SAFETY: &mut self implies no concurrent users.
        unsafe {
            let mut p = self.head;
            while !p.is_null() {
                let next = (*p).next.load();
                flock_epoch::free_now(p);
                if p == self.tail {
                    break;
                }
                p = next;
            }
        }
    }
}

impl<K: Key, V: Value> Map<K, V> for DList<K, V> {
    fn insert(&self, key: K, value: V) -> bool {
        DList::insert(self, key, value)
    }
    fn remove(&self, key: K) -> bool {
        DList::remove(self, key)
    }
    fn get(&self, key: K) -> Option<V> {
        DList::get(self, key)
    }
    fn contains(&self, key: K) -> bool {
        DList::contains(self, &key)
    }
    fn name(&self) -> &'static str {
        "dlist"
    }
    fn update(&self, key: K, value: V) -> bool {
        DList::update(self, key, value)
    }
    fn has_atomic_update(&self) -> bool {
        true
    }
    fn len_approx(&self) -> Option<usize> {
        Some(self.count.get())
    }
}

impl<K: Key, V: Value> flock_api::OrderedMap<K, V> for DList<K, V> {
    fn range(&self, lo: std::ops::Bound<&K>, hi: std::ops::Bound<&K>) -> Vec<(K, V)> {
        DList::range(self, lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flock_api::testing as testutil;

    #[test]
    fn basic_ops() {
        testutil::both_modes(|| {
            let l: DList<u64, u64> = DList::new();
            assert_eq!(l.get(5), None);
            assert!(l.insert(5, 50));
            assert!(!l.insert(5, 51), "duplicate insert must fail");
            assert_eq!(l.get(5), Some(50));
            assert!(l.insert(3, 30));
            assert!(l.insert(7, 70));
            assert_eq!(l.collect(), vec![(3, 30), (5, 50), (7, 70)]);
            assert!(l.remove(5));
            assert!(!l.remove(5));
            assert_eq!(l.collect(), vec![(3, 30), (7, 70)]);
            l.check_invariants();
        });
    }

    #[test]
    fn boundary_keys() {
        testutil::both_modes(|| {
            let l: DList<u64, u64> = DList::new();
            assert!(l.insert(0, 1));
            assert!(l.insert(u64::MAX, 2));
            assert_eq!(l.get(0), Some(1));
            assert_eq!(l.get(u64::MAX), Some(2));
            assert!(l.remove(0));
            assert!(l.remove(u64::MAX));
            assert!(l.is_empty());
        });
    }

    #[test]
    fn heap_keys_and_fat_values() {
        testutil::both_modes(|| {
            let l: DList<String, flock_core::Indirect<Vec<u64>>> = DList::new();
            assert!(l.insert("b".into(), flock_core::Indirect(vec![2, 2])));
            assert!(l.insert("a".into(), flock_core::Indirect(vec![1])));
            assert_eq!(l.get("a".into()), Some(flock_core::Indirect(vec![1])));
            assert_eq!(
                l.collect()
                    .iter()
                    .map(|(k, _)| k.clone())
                    .collect::<Vec<_>>(),
                vec!["a".to_string(), "b".to_string()],
                "heap keys stay sorted"
            );
            assert!(l.remove("a".into()));
            assert_eq!(l.get("a".into()), None);
            l.check_invariants();
        });
    }

    #[test]
    fn native_update_in_place() {
        testutil::both_modes(|| {
            let l: DList<u64, u64> = DList::new();
            assert!(!l.update(1, 10), "update of an absent key refused");
            assert!(l.insert(1, 10));
            assert!(l.update(1, 11));
            assert_eq!(l.get(1), Some(11));
            assert_eq!(l.len(), 1, "update must not change the count");
            assert!(l.remove(1));
            assert!(!l.update(1, 12));
            l.check_invariants();
        });
    }

    #[test]
    fn oracle() {
        testutil::both_modes(|| {
            let l: DList<u64, u64> = DList::new();
            testutil::oracle_check(&l, 3_000, 64, 42);
            l.check_invariants();
        });
    }

    #[test]
    fn concurrent_partitioned() {
        testutil::both_modes(|| {
            let l: DList<u64, u64> = DList::new();
            testutil::partition_stress(&l, 4, 1_500);
            l.check_invariants();
        });
    }

    #[test]
    fn drop_reclaims_without_crash() {
        testutil::exclusive(|| {
            let l: DList<u64, u64> = DList::new();
            for i in 0..100 {
                l.insert(i, i);
            }
            for i in 0..50 {
                l.remove(i * 2);
            }
            drop(l);
            flock_epoch::flush_all();
        });
    }
}
