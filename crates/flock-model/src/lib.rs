//! # flock-model — deterministic model checking for the Flock protocols
//!
//! The protocol crates (`flock-sync`, `flock-core`, `flock-epoch`) route
//! every atomic and fence through `flock_sync::atomic`; with their `model`
//! feature on, this crate supplies the runtime behind that shim and turns
//! each access into a scheduling point of a systematic concurrency
//! checker — the *real implementation* runs under the model, not a
//! transliteration. The container this repo builds in is offline (no loom,
//! no shuttle), so the checker is built in-repo and dependency-free.
//!
//! * **Exploration**: depth-first search over schedules with bounded
//!   preemptions (Musuvathi–Qadeer-style context bounding). A schedule is a
//!   list of choice indices; the DFS replays a prefix and diverges at the
//!   last branch, so the same seed state always explores in the same order
//!   and a reported schedule can be replayed verbatim with [`replay`].
//! * **Memory model**: TSO store buffers (see `exec.rs` docs) — the
//!   store–load reordering fragment that the announce/Dekker pair and the
//!   epoch fences defend against. `tso: false` selects plain sequential
//!   consistency for tests about interleaving logic only.
//! * **Scope bounding**: model builds shrink the ABA tag space
//!   (`flock_sync::pack::TAG_LIMIT` = 8) so tag wraparound is reachable,
//!   and tests keep thread/op counts small enough that the DFS *completes*
//!   ([`Report::complete`]); every claim a model test makes is exhaustive
//!   at its stated bounds.
//! * **Sanity mutants**: the protocol crates expose `cfg(model)`-gated
//!   weakenings (`mutants` modules: a dropped announce fence, a dropped pin
//!   fence, log commits that stop agreeing, the rejected lock-free
//!   scan-bound release). The test suite flips each one and asserts the
//!   checker **finds** a failing schedule — proving the harness catches the
//!   bug class it exists for, not just that green runs stay green.
//!
//! ```ignore
//! let report = flock_model::explore(Config::tso(), || {
//!     let t = flock_model::spawn(|| { /* thread body */ });
//!     /* main-thread body */
//!     t.join();
//!     /* assert invariants */
//! });
//! report.assert_exhaustive_ok();
//! ```

mod exec;

pub use exec::{STAT_SLEEPS, STAT_STEPS};

use std::sync::{Arc, Mutex};

use exec::{Runtime, WorkerPool};

/// Exploration parameters. Defaults are deliberately small: model tests are
/// about exhaustiveness at tiny scope, not coverage at large scope.
#[derive(Clone, Debug)]
pub struct Config {
    /// Maximum preemptions per schedule (context switches away from a
    /// still-runnable thread). Switches at blocking/finish points are free.
    pub max_preemptions: usize,
    /// Hard cap on explored schedules; exceeding it ends exploration with
    /// `complete = false`.
    pub max_schedules: usize,
    /// Hard cap on scheduling points in one execution; exceeding it prunes
    /// that schedule (counted in [`Report::pruned`], never silent).
    pub max_steps: usize,
    /// Model TSO store buffers (true) or sequential consistency (false).
    pub tso: bool,
    /// `Some(seed)`: random sampling of [`Config::samples`] schedules
    /// instead of exhaustive DFS (same seed → same schedules). `None`:
    /// exhaustive DFS.
    pub seed: Option<u64>,
    /// Number of schedules to sample in seeded-random mode.
    pub samples: usize,
    /// Keep at most this many trace lines per execution (failure reports).
    pub trace_cap: usize,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            max_preemptions: 2,
            max_schedules: 200_000,
            max_steps: 20_000,
            tso: false,
            seed: None,
            samples: 2_000,
            trace_cap: 400,
        }
    }
}

impl Config {
    /// Default exhaustive config with sequential consistency.
    pub fn sc() -> Self {
        Self::default()
    }

    /// Default exhaustive config with TSO store buffers.
    pub fn tso() -> Self {
        Self {
            tso: true,
            ..Self::default()
        }
    }
}

/// A failing schedule, replayable with [`replay`].
#[derive(Clone, Debug)]
pub struct Failure {
    /// The choice-index schedule that produced the failure.
    pub schedule: Vec<usize>,
    /// The first panic message observed.
    pub message: String,
    /// Per-step trace of the failing execution (possibly truncated).
    pub trace: Vec<String>,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "model failure: {}", self.message)?;
        writeln!(f, "replay schedule: {:?}", self.schedule)?;
        writeln!(f, "trace ({} steps):", self.trace.len())?;
        for line in &self.trace {
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

/// The result of an exploration.
#[derive(Clone, Debug)]
pub struct Report {
    /// Schedules executed.
    pub schedules_run: usize,
    /// True iff the DFS exhausted the whole (bounded-preemption) schedule
    /// space within `max_schedules`. Always false in seeded-random mode.
    pub complete: bool,
    /// Executions cut off by `max_steps` (should be 0 for exhaustive
    /// claims; never silently ignored).
    pub pruned: usize,
    /// The first failure found, if any (exploration stops at the first).
    pub failure: Option<Failure>,
}

impl Report {
    /// Assert no failure was found, the space was fully explored, and
    /// nothing was pruned — the contract of an exhaustive model test.
    #[track_caller]
    pub fn assert_exhaustive_ok(&self) {
        if let Some(f) = &self.failure {
            panic!("{f}");
        }
        assert!(
            self.complete,
            "schedule space not exhausted within budget ({} schedules run)",
            self.schedules_run
        );
        assert_eq!(self.pruned, 0, "schedules were pruned by max_steps");
    }

    /// Assert a failure **was** found (sanity-mutant tests: the checker
    /// must catch the planted bug).
    #[track_caller]
    pub fn assert_finds_bug(&self) -> &Failure {
        self.failure.as_ref().unwrap_or_else(|| {
            panic!(
                "mutant not caught: {} schedules (complete = {}, pruned = {})",
                self.schedules_run, self.complete, self.pruned
            )
        })
    }
}

/// Handle to a spawned model thread.
pub struct JoinHandle<T> {
    id: usize,
    result: Arc<Mutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    /// Wait (as a scheduling point) for the thread to finish; returns its
    /// result.
    pub fn join(self) -> T {
        let rt = exec::current_runtime();
        rt.join_vthread(self.id);
        self.result
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("model thread finished without a result")
    }
}

/// Spawn a model thread. Must be called from inside a model execution (the
/// body passed to [`explore`], or another spawned thread).
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let rt = exec::current_runtime();
    let id = rt.register_thread();
    let result = Arc::new(Mutex::new(None));
    let slot = Arc::clone(&result);
    rt.start_vthread(
        id,
        Box::new(move || {
            let v = f();
            *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
        }),
    );
    JoinHandle { id, result }
}

enum ExecResult {
    Ok,
    Pruned,
    Failed(Failure),
}

struct ExecRecord {
    /// (chosen index, number of alternatives) at each decision point.
    decisions: Vec<(usize, usize)>,
    result: ExecResult,
}

/// Run one execution following `prefix` (then always choosing index 0 /
/// rng), recording every decision. Scheduling decisions are made inline by
/// the vthreads themselves (see `exec.rs`); this function only sets the
/// execution up, kicks off the first decision, and collects the outcome.
fn run_execution(
    cfg: &Config,
    prefix: &[usize],
    rng: Option<u64>,
    body: &Arc<dyn Fn() + Send + Sync>,
    pool: &Arc<WorkerPool>,
) -> (ExecRecord, Option<u64>) {
    // Identical start state for every execution: every worker back to
    // fresh-thread thread-local state, nothing retired, cadence counters
    // zeroed, no reservations, no stale announcements.
    pool.reset_all_workers();

    let rt = Runtime::new(
        pool,
        cfg.tso,
        cfg.trace_cap,
        prefix.to_vec(),
        cfg.max_preemptions,
        cfg.max_steps,
        rng,
    );
    let id0 = rt.register_thread();
    debug_assert_eq!(id0, 0);
    let body2 = Arc::clone(body);
    rt.start_vthread(0, Box::new(move || body2()));
    rt.schedule_first();

    let rec = rt.wait_outcome();
    let rng_out = rt.state.lock().unwrap_or_else(|e| e.into_inner()).rng;
    let result = match rec.outcome {
        exec::Outcome::Success => ExecResult::Ok,
        exec::Outcome::Pruned => ExecResult::Pruned,
        exec::Outcome::Failed => ExecResult::Failed(Failure {
            schedule: rec.decisions.iter().map(|&(c, _)| c).collect(),
            message: rec.failure.unwrap_or_else(|| "unknown failure".into()),
            trace: rec.trace,
        }),
    };
    (
        ExecRecord {
            decisions: rec.decisions,
            result,
        },
        rng_out,
    )
}

/// Explore the schedule space of `body` under `cfg`.
///
/// `body` runs once per schedule as model thread 0; it may [`spawn`] more
/// threads and must re-create all test state itself (executions share the
/// process-global registries, which the engine resets between runs).
/// Exploration stops at the first failure.
pub fn explore(cfg: Config, body: impl Fn() + Send + Sync + 'static) -> Report {
    let body: Arc<dyn Fn() + Send + Sync> = Arc::new(body);
    let pool = WorkerPool::new();
    let mut report = Report {
        schedules_run: 0,
        complete: false,
        pruned: 0,
        failure: None,
    };

    if let Some(seed) = cfg.seed {
        // Seeded-random sampling: never "complete", same seed → same runs.
        let mut s = seed | 1;
        for _ in 0..cfg.samples {
            let (rec, rng_out) = run_execution(&cfg, &[], Some(s), &body, &pool);
            s = rng_out.unwrap_or(s);
            report.schedules_run += 1;
            match rec.result {
                ExecResult::Ok => {}
                ExecResult::Pruned => report.pruned += 1,
                ExecResult::Failed(f) => {
                    report.failure = Some(f);
                    return report;
                }
            }
        }
        return report;
    }

    // Exhaustive DFS: replay a prefix, extend with first choices, then
    // backtrack at the deepest decision with an unexplored alternative.
    let mut prefix: Vec<usize> = Vec::new();
    loop {
        let (rec, _) = run_execution(&cfg, &prefix, None, &body, &pool);
        report.schedules_run += 1;
        match rec.result {
            ExecResult::Ok => {}
            ExecResult::Pruned => report.pruned += 1,
            ExecResult::Failed(f) => {
                report.failure = Some(f);
                return report;
            }
        }
        // Backtrack.
        let mut k = rec.decisions.len();
        let next = loop {
            if k == 0 {
                break None;
            }
            k -= 1;
            let (chosen, alts) = rec.decisions[k];
            if chosen + 1 < alts {
                let mut p: Vec<usize> = rec.decisions[..k].iter().map(|&(c, _)| c).collect();
                p.push(chosen + 1);
                break Some(p);
            }
        };
        match next {
            Some(p) => prefix = p,
            None => {
                report.complete = true;
                return report;
            }
        }
        if report.schedules_run >= cfg.max_schedules {
            return report; // complete stays false
        }
    }
}

/// Re-run `body` under exactly one `schedule` (from a [`Failure`] report),
/// returning that execution's outcome. For debugging failing schedules.
pub fn replay(cfg: Config, schedule: &[usize], body: impl Fn() + Send + Sync + 'static) -> Report {
    let body: Arc<dyn Fn() + Send + Sync> = Arc::new(body);
    let pool = WorkerPool::new();
    let (rec, _) = run_execution(&cfg, schedule, None, &body, &pool);
    let mut report = Report {
        schedules_run: 1,
        complete: false,
        pruned: 0,
        failure: None,
    };
    match rec.result {
        ExecResult::Ok => {}
        ExecResult::Pruned => report.pruned = 1,
        ExecResult::Failed(f) => report.failure = Some(f),
    }
    report
}
