//! The execution engine: a persistent worker pool playing cooperative
//! virtual threads, an **inline scheduler** (each parking thread runs the
//! next scheduling decision itself), and the [`ModelRuntime`]
//! implementation giving the `flock_sync::atomic` shim its TSO
//! store-buffer semantics.
//!
//! ## One execution
//!
//! Exactly one virtual thread runs at any instant. A vthread runs until its
//! next shim atomic op (a *yield point*); there it parks, runs the
//! scheduler ([`Runtime::schedule_next`]) under the state lock, and either
//! continues itself (the schedule chose it again — the common case, zero
//! context switches) or wakes the chosen vthread and waits. The schedule is
//! a list of choice indices; decisions replay a prefix and then take index
//! 0 (or a seeded-random index). Everything is deterministic given the
//! schedule: memory actions are applied under a single lock, spawn order
//! fixes vthread ids, and no wall-clock or randomness enters any decision.
//!
//! ## The worker pool & determinism across executions
//!
//! OS thread spawn and blocking-wakeup syscalls are extremely expensive in
//! this repo's build container (~0.7 ms a spawn, ~120 µs a condvar
//! roundtrip), which dictates the engine shape: vthreads run on
//! **persistent workers** (vthread `i` of every execution runs on worker
//! `i`), handoffs spin briefly before condvar-sleeping, and the scheduler
//! runs inline so the dominant continue-current decision never leaves the
//! running thread. Because workers persist, their thread-local state
//! (claimed thread id, descriptor pool, epoch bag) would otherwise leak
//! between executions and break the DFS's prefix-replay determinism; a
//! per-worker **reset job** runs before every execution and returns each
//! worker to the state a freshly spawned thread would have (tid released,
//! pools drained, counters zeroed).
//!
//! ## Memory model (TSO)
//!
//! Stores weaker than `SeqCst` append to the issuing thread's FIFO buffer;
//! `SeqCst` stores, all RMWs, and `SeqCst` fences drain the issuer's buffer
//! first; loads forward from the issuer's own buffer; the scheduler may
//! flush the oldest entry of *any* thread's buffer at any decision point —
//! including after the thread finished (thread exit is deliberately not a
//! barrier). Engine contract following from that: shared shim cells must be
//! kept alive by the driving test body for the whole execution, so a late
//! flush never writes to freed memory — true for the protocol globals and
//! every Arc-held test cell. `Config::tso = false` degrades to sequential
//! consistency (every store immediate).
//!
//! ## Ending an execution
//!
//! On an assertion failure inside a vthread, the panic is caught, recorded
//! (first failure wins), and every other vthread is unwound via a sentinel
//! panic at its next yield point; drop handlers that touch shim atomics
//! during unwinding run in direct (unscheduled) mode so cleanup cannot
//! deadlock or double-panic.

use std::collections::VecDeque;
use std::sync::atomic::AtomicU64 as RealU64;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Weak};

use flock_sync::atomic::ModelRuntime;

/// Sentinel panic payload used to unwind parked vthreads when an execution
/// aborts; never reported as a failure.
pub(crate) struct ModelAbort;

/// Engine instrumentation (dev): total scheduling points and tier-2
/// condvar sleeps across all executions.
pub static STAT_STEPS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
/// See [`STAT_STEPS`].
pub static STAT_SLEEPS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Tiered wait on a cheap predicate: spin briefly, then donate the CPU.
/// Used only by pool dispatch paths (short waits).
fn spin_wait(mut ready: impl FnMut() -> bool) {
    for _ in 0..4_000 {
        if ready() {
            return;
        }
        std::hint::spin_loop();
    }
    loop {
        if ready() {
            return;
        }
        std::thread::yield_now();
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Status {
    /// Parked at a yield point; can be scheduled.
    Ready,
    /// Currently executing user code (exactly one thread at a time).
    Running,
    /// Waiting for another vthread to finish.
    BlockedJoin(usize),
    /// Body returned (or unwound); never scheduled again.
    Finished,
}

pub(crate) struct ThreadState {
    pub(crate) status: Status,
    /// TSO store buffer: (backing-storage address, value), oldest first.
    pub(crate) buffer: VecDeque<(usize, u64)>,
    /// Depth of `atomic::critical` nesting: while > 0, yield points do not
    /// reschedule and stores are applied directly (SC).
    pub(crate) critical: usize,
    /// Description of the op waiting at the current yield point.
    pub(crate) pending: &'static str,
}

/// How one execution ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Outcome {
    Success,
    Failed,
    Pruned,
}

/// Everything the explorer needs back from one finished execution.
pub(crate) struct ExecRecord {
    /// (chosen index, number of alternatives) at each decision point.
    pub(crate) decisions: Vec<(usize, usize)>,
    pub(crate) outcome: Outcome,
    pub(crate) failure: Option<String>,
    pub(crate) trace: Vec<String>,
}

pub(crate) struct ExecState {
    pub(crate) threads: Vec<ThreadState>,
    /// Which vthread holds the run token; `None` = a scheduler decision is
    /// due (made inline by the parking thread, or once by the controller at
    /// execution start).
    pub(crate) running: Option<usize>,
    pub(crate) abort: bool,
    pub(crate) failure: Option<String>,
    pub(crate) trace: Vec<String>,
    pub(crate) steps: usize,
    /// Vthreads currently condvar-sleeping (tier-2 wait); wake syscalls are
    /// paid only when this is non-zero.
    pub(crate) sleepers: usize,

    // ---- inline-scheduler bookkeeping ----
    /// Schedule prefix to replay; beyond it, first-choice (or rng).
    pub(crate) prefix: Vec<usize>,
    /// (chosen index, number of alternatives) at each decision point.
    pub(crate) decisions: Vec<(usize, usize)>,
    pub(crate) preemptions: usize,
    pub(crate) max_preemptions: usize,
    pub(crate) max_steps: usize,
    /// xorshift state for seeded-random mode (`None` = DFS first-choice).
    pub(crate) rng: Option<u64>,
    pub(crate) last_running: Option<usize>,
    /// Set when the execution's outcome is decided; the controller waits on
    /// it.
    pub(crate) outcome: Option<Outcome>,
}

/// The per-execution runtime: scheduler state plus the memory-model
/// configuration. Implements the `flock_sync::atomic` hook.
pub(crate) struct Runtime {
    pub(crate) state: Mutex<ExecState>,
    /// Tier-2 parking for vthreads waiting on the run token.
    pub(crate) token_cv: Condvar,
    /// Weak: workers hold `Arc<Runtime>` through their job, so a strong
    /// pool reference here could make the *last* pool handle drop on a
    /// worker — which would make `WorkerPool::drop` join the very thread
    /// it runs on. The controller (explore/replay) owns the strong handle.
    pub(crate) pool: Weak<WorkerPool>,
    pub(crate) tso: bool,
    pub(crate) trace_cap: usize,
}

thread_local! {
    /// The calling OS thread's vthread id (usize::MAX = not a vthread).
    static VTID: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
    /// The runtime of the execution this vthread belongs to, for
    /// `spawn`/`join` calls from inside user code.
    static CURRENT: std::cell::RefCell<Option<Arc<Runtime>>> = const { std::cell::RefCell::new(None) };
}

pub(crate) fn current_runtime() -> Arc<Runtime> {
    CURRENT.with(|c| {
        c.borrow()
            .clone()
            .expect("flock_model::spawn/join called outside a model execution")
    })
}

fn lock(rt: &Runtime) -> MutexGuard<'_, ExecState> {
    rt.state.lock().unwrap_or_else(|e| e.into_inner())
}

// ------------------------------------------------------------ worker pool

enum Job {
    /// Play vthread `id` of execution `rt` with the given body.
    Run {
        rt: Arc<Runtime>,
        id: usize,
        body: Box<dyn FnOnce() + Send>,
    },
    /// Return this worker's thread-locals to fresh-thread state.
    Reset,
    /// Exit the worker loop.
    Shutdown,
}

/// Job handoff slot: `state` is the spin target (0 = idle, 1 = assigned),
/// the payload travels under the mutex. Workers spin briefly on `state` and
/// then condvar-sleep, so idle workers consume no CPU during (and between)
/// executions.
struct JobSlot {
    state: AtomicU8,
    payload: Mutex<Option<Job>>,
    cv: Condvar,
}

const IDLE: u8 = 0;
const ASSIGNED: u8 = 1;

struct Worker {
    slot: Arc<JobSlot>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// Persistent workers; worker `i` always plays vthread `i`. Grows on
/// demand (worker startup touches no model-visible global state, so a
/// mid-execution grow cannot perturb determinism).
pub(crate) struct WorkerPool {
    workers: Mutex<Vec<Worker>>,
}

impl WorkerPool {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Self {
            workers: Mutex::new(Vec::new()),
        })
    }

    /// Number of workers that currently exist.
    pub(crate) fn size(&self) -> usize {
        self.workers.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    fn ensure(&self, id: usize) {
        let mut ws = self.workers.lock().unwrap_or_else(|e| e.into_inner());
        while ws.len() <= id {
            let slot = Arc::new(JobSlot {
                state: AtomicU8::new(IDLE),
                payload: Mutex::new(None),
                cv: Condvar::new(),
            });
            let slot2 = Arc::clone(&slot);
            let widx = ws.len();
            let handle = std::thread::Builder::new()
                .name(format!("flock-model-w{widx}"))
                .spawn(move || worker_loop(slot2))
                .expect("spawn model worker");
            ws.push(Worker {
                slot,
                handle: Some(handle),
            });
        }
    }

    /// Hand `job` to worker `id`, waiting for the slot to be idle first.
    /// Asynchronous: does not wait for the worker to pick the job up.
    fn dispatch(&self, id: usize, job: Job) {
        self.ensure(id);
        let slot = {
            let ws = self.workers.lock().unwrap_or_else(|e| e.into_inner());
            Arc::clone(&ws[id].slot)
        };
        spin_wait(|| slot.state.load(Ordering::Acquire) == IDLE);
        let mut p = slot.payload.lock().unwrap_or_else(|e| e.into_inner());
        *p = Some(job);
        slot.state.store(ASSIGNED, Ordering::Release);
        slot.cv.notify_one();
    }

    /// Wait until worker `id` has finished its current job (slot idle).
    fn wait_idle(&self, id: usize) {
        let slot = {
            let ws = self.workers.lock().unwrap_or_else(|e| e.into_inner());
            Arc::clone(&ws[id].slot)
        };
        spin_wait(|| slot.state.load(Ordering::Acquire) == IDLE);
    }

    /// Run the fresh-thread reset job on every existing worker (in
    /// parallel — resets touch only the worker's own thread-locals plus
    /// mutex-serialized registries whose final state is order-independent),
    /// then clear the process-global model state. Called between
    /// executions.
    pub(crate) fn reset_all_workers(&self) {
        let n = self.size();
        for id in 0..n {
            self.dispatch(id, Job::Reset);
        }
        for id in 0..n {
            self.wait_idle(id);
        }
        flock_epoch::model_reset();
        flock_sync::announce::model_reset_global();
        flock_sync::wait_slot::model_reset_global();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        let mut ws = self.workers.lock().unwrap_or_else(|e| e.into_inner());
        // Shut down in id order so the workers' TLS destructors (tid
        // release, pool drain) run one at a time, deterministically.
        for w in ws.iter_mut() {
            spin_wait(|| w.slot.state.load(Ordering::Acquire) == IDLE);
            {
                let mut p = w.slot.payload.lock().unwrap_or_else(|e| e.into_inner());
                *p = Some(Job::Shutdown);
                w.slot.state.store(ASSIGNED, Ordering::Release);
                w.slot.cv.notify_one();
            }
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

fn worker_loop(slot: Arc<JobSlot>) {
    loop {
        // Tier 1: brief spin for back-to-back dispatch; tier 2: sleep.
        for _ in 0..2_000 {
            if slot.state.load(Ordering::Acquire) == ASSIGNED {
                break;
            }
            std::hint::spin_loop();
        }
        let job = {
            let mut p = slot.payload.lock().unwrap_or_else(|e| e.into_inner());
            while slot.state.load(Ordering::Acquire) != ASSIGNED {
                p = slot.cv.wait(p).unwrap_or_else(|e| e.into_inner());
            }
            p.take().expect("assigned job slot without payload")
        };
        match job {
            Job::Run { rt, id, body } => {
                rt.vthread_main(id, body);
                slot.state.store(IDLE, Ordering::Release);
            }
            Job::Reset => {
                // Fresh-thread state: tid released, per-thread pools/bags
                // drained, cadence counters zeroed. Runs with no model
                // runtime registered (direct ops).
                flock_sync::thread_ctx::with(|tc| tc.model_reset_thread_state());
                flock_core::model_drain_descriptor_pool();
                flock_epoch::model_drain_local_bag();
                slot.state.store(IDLE, Ordering::Release);
            }
            Job::Shutdown => {
                slot.state.store(IDLE, Ordering::Release);
                return;
            }
        }
    }
}

// ------------------------------------------------------- inline scheduler

/// A scheduler choice at one decision point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Choice {
    Step(usize),
    Flush(usize),
}

impl Runtime {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        pool: &Arc<WorkerPool>,
        tso: bool,
        trace_cap: usize,
        prefix: Vec<usize>,
        max_preemptions: usize,
        max_steps: usize,
        rng: Option<u64>,
    ) -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(ExecState {
                threads: Vec::new(),
                running: None,
                abort: false,
                failure: None,
                trace: Vec::new(),
                steps: 0,
                sleepers: 0,
                prefix,
                decisions: Vec::new(),
                preemptions: 0,
                max_preemptions,
                max_steps,
                rng,
                last_running: None,
                outcome: None,
            }),
            token_cv: Condvar::new(),
            pool: Arc::downgrade(pool),
            tso,
            trace_cap,
        })
    }

    fn push_trace(&self, st: &mut ExecState, line: String) {
        if st.trace.len() < self.trace_cap {
            st.trace.push(line);
        }
    }

    /// End the execution with `outcome`: record it, mark abort so every
    /// still-parked vthread unwinds, wake sleepers. Caller holds the lock.
    fn finish_execution(&self, st: &mut ExecState, outcome: Outcome) {
        if st.outcome.is_none() {
            st.outcome = Some(outcome);
        }
        st.abort = true;
        if st.sleepers > 0 {
            self.token_cv.notify_all();
        }
    }

    /// Make scheduling decisions until a vthread holds the run token (or
    /// the execution is over). Runs inline in whichever thread gave up the
    /// token — the continue-current case therefore needs no context switch.
    /// Caller holds the lock; `st.running` must be `None`.
    ///
    /// Returns the chosen vthread, or `None` when the execution ended.
    fn schedule_next(&self, st: &mut ExecState) -> Option<usize> {
        debug_assert!(st.running.is_none());
        loop {
            if st.failure.is_some() {
                self.finish_execution(st, Outcome::Failed);
                return None;
            }
            if st.steps > st.max_steps {
                self.finish_execution(st, Outcome::Pruned);
                return None;
            }

            // Promote joiners whose target has finished. Completing a join
            // is a synchronizes-with edge (as std::thread::join), so the
            // target's remaining buffered stores become visible here —
            // without this, the model would admit post-join staleness no
            // real execution can produce. Delayed-store interleavings
            // *before* the join remain fully explorable.
            for i in 0..st.threads.len() {
                if let Status::BlockedJoin(t) = st.threads[i].status
                    && st.threads[t].status == Status::Finished
                {
                    Self::flush_buffer(st, t);
                    st.threads[i].status = Status::Ready;
                }
            }

            if st
                .threads
                .iter()
                .all(|t| matches!(t.status, Status::Finished))
            {
                self.finish_execution(st, Outcome::Success);
                return None;
            }

            // Enabled choices, deterministically ordered: continue-current
            // first, then other ready threads (only within the preemption
            // budget), then store-buffer flushes.
            let cur = st
                .last_running
                .filter(|&t| matches!(st.threads[t].status, Status::Ready));
            let mut choices: Vec<Choice> = Vec::new();
            if let Some(c) = cur {
                choices.push(Choice::Step(c));
            }
            if cur.is_none() || st.preemptions < st.max_preemptions {
                for (t, ts) in st.threads.iter().enumerate() {
                    if matches!(ts.status, Status::Ready) && Some(t) != cur {
                        choices.push(Choice::Step(t));
                    }
                }
            }
            if self.tso {
                for (t, ts) in st.threads.iter().enumerate() {
                    if !ts.buffer.is_empty() {
                        choices.push(Choice::Flush(t));
                    }
                }
            }

            if choices.is_empty() {
                let parked: Vec<String> = st
                    .threads
                    .iter()
                    .enumerate()
                    .map(|(i, t)| format!("t{i}:{:?}@{}", t.status, t.pending))
                    .collect();
                st.failure.get_or_insert_with(|| {
                    format!("deadlock: no enabled choice ({})", parked.join(", "))
                });
                self.finish_execution(st, Outcome::Failed);
                return None;
            }

            let di = st.decisions.len();
            let idx = match st.prefix.get(di) {
                Some(&i) => {
                    assert!(
                        i < choices.len(),
                        "schedule replay diverged at decision {di}: index {i} of {} choices \
                         (nondeterministic test body?)",
                        choices.len()
                    );
                    i
                }
                None => match st.rng.as_mut() {
                    Some(s) => {
                        // xorshift64 — deterministic per seed.
                        *s ^= *s << 13;
                        *s ^= *s >> 7;
                        *s ^= *s << 17;
                        (*s % choices.len() as u64) as usize
                    }
                    None => 0,
                },
            };
            st.decisions.push((idx, choices.len()));

            match choices[idx] {
                Choice::Flush(t) => {
                    self.flush_one(st, t);
                    // No thread ran; decide again.
                }
                Choice::Step(t) => {
                    if let Some(c) = cur
                        && t != c
                    {
                        st.preemptions += 1;
                    }
                    st.last_running = Some(t);
                    st.running = Some(t);
                    // The chosen thread flips itself to Running when it
                    // takes the token (it may be the caller itself).
                    if st.sleepers > 0 {
                        self.token_cv.notify_all();
                    }
                    return Some(t);
                }
            }
        }
    }

    /// Park at a yield point, decide who runs next, and wait unless the
    /// decision is to continue. Returns without parking when inside a
    /// `critical` section (the op happens as part of the current step).
    fn yield_point(&self, what: &'static str) {
        let me = VTID.with(|v| v.get());
        debug_assert_ne!(me, usize::MAX);
        {
            let mut st = lock(self);
            if st.abort {
                drop(st);
                std::panic::panic_any(ModelAbort);
            }
            if st.threads[me].critical > 0 {
                st.steps += 1;
                return;
            }
            st.threads[me].status = Status::Ready;
            st.threads[me].pending = what;
            st.running = None;
            match self.schedule_next(&mut st) {
                Some(t) if t == me => {
                    // Continue-current: keep running, zero context switches.
                    st.threads[me].status = Status::Running;
                    st.steps += 1;
                    STAT_STEPS.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                Some(_) => {} // someone else runs; fall through to wait
                None => {
                    // Execution over (possibly our own prune/deadlock
                    // detection): unwind.
                    drop(st);
                    std::panic::panic_any(ModelAbort);
                }
            }
        }
        self.wait_for_token(me);
    }

    /// Wait until the scheduler hands this vthread the run token (or the
    /// execution aborts). Tier 1: a brief lock-and-check spin (the mutex is
    /// effectively uncontended — the runner takes it a few times per step).
    /// Tier 2: condvar sleep, so parked threads do not compete with the
    /// runner for the two cores.
    fn wait_for_token(&self, me: usize) {
        for _ in 0..600 {
            let mut st = lock(self);
            if st.abort {
                drop(st);
                std::panic::panic_any(ModelAbort);
            }
            if st.running == Some(me) {
                st.threads[me].status = Status::Running;
                st.steps += 1;
                STAT_STEPS.fetch_add(1, Ordering::Relaxed);
                return;
            }
            drop(st);
            std::hint::spin_loop();
        }
        STAT_SLEEPS.fetch_add(1, Ordering::Relaxed);
        let mut st = lock(self);
        loop {
            if st.abort {
                drop(st);
                std::panic::panic_any(ModelAbort);
            }
            if st.running == Some(me) {
                st.threads[me].status = Status::Running;
                st.steps += 1;
                STAT_STEPS.fetch_add(1, Ordering::Relaxed);
                return;
            }
            st.sleepers += 1;
            st = self.token_cv.wait(st).unwrap_or_else(|e| e.into_inner());
            st.sleepers -= 1;
        }
    }

    /// Drain `threads[t]`'s store buffer to main memory (FIFO).
    ///
    /// Buffer entries address the backing `AtomicU64` of a live shim cell;
    /// aliveness is the engine contract documented at module level.
    fn flush_buffer(st: &mut ExecState, t: usize) {
        while let Some((addr, val)) = st.threads[t].buffer.pop_front() {
            // SAFETY: engine contract — addr is the backing storage of a
            // shim atomic kept alive for the whole execution.
            unsafe { (*(addr as *const RealU64)).store(val, Ordering::SeqCst) };
        }
    }

    /// Flush the single oldest entry of `t`'s buffer (a scheduler choice).
    fn flush_one(&self, st: &mut ExecState, t: usize) {
        if let Some((addr, val)) = st.threads[t].buffer.pop_front() {
            // SAFETY: as in `flush_buffer`.
            unsafe { (*(addr as *const RealU64)).store(val, Ordering::SeqCst) };
            let line = format!("t{t}: [flush] @{addr:#x} = {val:#x}");
            self.push_trace(st, line);
        }
    }

    /// Register a new vthread; returns its id.
    pub(crate) fn register_thread(&self) -> usize {
        let mut st = lock(self);
        st.threads.push(ThreadState {
            status: Status::Ready,
            buffer: VecDeque::new(),
            critical: 0,
            pending: "start",
        });
        st.threads.len() - 1
    }

    /// Start vthread `id` on its worker.
    pub(crate) fn start_vthread(self: &Arc<Self>, id: usize, body: Box<dyn FnOnce() + Send>) {
        let pool = self
            .pool
            .upgrade()
            .expect("worker pool dropped during an execution");
        pool.dispatch(
            id,
            Job::Run {
                rt: Arc::clone(self),
                id,
                body,
            },
        );
    }

    /// Kick off the first scheduling decision of an execution (controller
    /// side, after starting vthread 0).
    pub(crate) fn schedule_first(&self) {
        let mut st = lock(self);
        let _ = self.schedule_next(&mut st);
    }

    /// Controller wait: block until the execution's outcome is decided and
    /// every vthread is finished; return the decision record.
    pub(crate) fn wait_outcome(&self) -> ExecRecord {
        let mut spins = 0usize;
        loop {
            let st = lock(self);
            if let Some(outcome) = st.outcome {
                if st
                    .threads
                    .iter()
                    .all(|t| matches!(t.status, Status::Finished))
                {
                    return ExecRecord {
                        decisions: st.decisions.clone(),
                        outcome,
                        failure: st.failure.clone(),
                        trace: st.trace.clone(),
                    };
                }
                // Outcome decided but some vthread still unwinding: keep
                // waking sleepers so they observe the abort.
                if st.sleepers > 0 {
                    self.token_cv.notify_all();
                }
            }
            drop(st);
            spins += 1;
            if spins < 100_000 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Block the calling vthread until vthread `target` finishes.
    pub(crate) fn join_vthread(&self, target: usize) {
        let me = VTID.with(|v| v.get());
        assert_ne!(
            me,
            usize::MAX,
            "JoinHandle::join called outside a model execution"
        );
        {
            let mut st = lock(self);
            if st.threads[target].status == Status::Finished {
                // Synchronizes-with edge of a completed join (see the
                // promotion loop in schedule_next): the target's buffered
                // stores become visible to the joiner.
                Self::flush_buffer(&mut st, target);
                return;
            }
            st.threads[me].status = Status::BlockedJoin(target);
            st.threads[me].pending = "join";
            st.running = None;
            match self.schedule_next(&mut st) {
                Some(t) if t == me => {
                    // Unreachable in practice (we are blocked until the
                    // target finishes, and it cannot finish while we hold
                    // the token) — but harmless to honor.
                    st.threads[me].status = Status::Running;
                    st.steps += 1;
                    return;
                }
                Some(_) => {}
                None => {
                    drop(st);
                    std::panic::panic_any(ModelAbort);
                }
            }
        }
        self.wait_for_token(me);
    }

    /// Play one vthread: register TLS, wait for the first schedule, run the
    /// body, report, and hand the token onward. Runs on the vthread's
    /// worker.
    fn vthread_main(self: &Arc<Self>, id: usize, body: Box<dyn FnOnce() + Send>) {
        VTID.with(|v| v.set(id));
        CURRENT.with(|c| *c.borrow_mut() = Some(Arc::clone(self)));
        // SAFETY: `self` is kept alive by the CURRENT TLS Arc for the whole
        // registration; cleared below before it drops.
        unsafe {
            flock_sync::atomic::set_model_runtime(Some(
                Arc::as_ptr(self) as *const (dyn ModelRuntime + 'static)
            ));
        }

        // Initial handshake: wait for the first Step(id) choice (or an
        // abort that beats it). An abort here must not unwind — the body
        // never started.
        let mut aborted_before_start = false;
        {
            let mut spins = 0usize;
            let mut st = lock(self);
            loop {
                if st.abort {
                    aborted_before_start = true;
                    break;
                }
                if st.running == Some(id) {
                    st.threads[id].status = Status::Running;
                    st.steps += 1;
                    break;
                }
                if spins < 600 {
                    spins += 1;
                    drop(st);
                    std::hint::spin_loop();
                    st = lock(self);
                } else {
                    st.sleepers += 1;
                    st = self.token_cv.wait(st).unwrap_or_else(|e| e.into_inner());
                    st.sleepers -= 1;
                }
            }
        }

        let result = if aborted_before_start {
            Err(Box::new(ModelAbort) as Box<dyn std::any::Any + Send>)
        } else {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(body))
        };

        // Shim ops from here on run direct (runtime deregistered).
        unsafe { flock_sync::atomic::set_model_runtime(None) };
        CURRENT.with(|c| *c.borrow_mut() = None);
        VTID.with(|v| v.set(usize::MAX));

        let mut st = lock(self);
        match result {
            Ok(()) => {
                // Deliberately NO buffer flush here: thread exit must not
                // act as a barrier, or a store parked in the buffer at the
                // thread's last op could never be observed as delayed.
                // Scheduler Flush choices can still drain it.
            }
            Err(payload) => {
                if payload.downcast_ref::<ModelAbort>().is_none() {
                    let msg = payload
                        .downcast_ref::<String>()
                        .map(String::as_str)
                        .or_else(|| payload.downcast_ref::<&'static str>().copied())
                        .unwrap_or("<non-string panic payload>");
                    st.failure
                        .get_or_insert_with(|| format!("vthread {id} panicked: {msg}"));
                }
                st.threads[id].buffer.clear();
            }
        }
        st.threads[id].status = Status::Finished;
        if st.running == Some(id) {
            st.running = None;
            // Hand the token onward (or end the execution).
            let _ = self.schedule_next(&mut st);
        }
    }
}

impl ModelRuntime for Runtime {
    fn load(&self, storage: &RealU64, _order: Ordering, what: &'static str) -> u64 {
        if std::thread::panicking() {
            return storage.load(Ordering::SeqCst);
        }
        self.yield_point(what);
        let me = VTID.with(|v| v.get());
        let addr = storage as *const RealU64 as usize;
        let mut st = lock(self);
        // TSO load forwarding: newest own-buffer entry for this address.
        let fwd = self.tso.then(|| {
            st.threads[me]
                .buffer
                .iter()
                .rev()
                .find(|(a, _)| *a == addr)
                .map(|&(_, v)| v)
        });
        let (val, src) = match fwd.flatten() {
            Some(v) => (v, "fwd"),
            None => (storage.load(Ordering::SeqCst), "mem"),
        };
        if st.trace.len() < self.trace_cap {
            let line = format!("t{me}: {what} @{addr:#x} -> {val:#x} ({src})");
            st.trace.push(line);
        }
        val
    }

    fn store(&self, storage: &RealU64, val: u64, order: Ordering, what: &'static str) {
        if std::thread::panicking() {
            storage.store(val, Ordering::SeqCst);
            return;
        }
        self.yield_point(what);
        let me = VTID.with(|v| v.get());
        let addr = storage as *const RealU64 as usize;
        let mut st = lock(self);
        let buffered = self.tso && order != Ordering::SeqCst && st.threads[me].critical == 0;
        if buffered {
            st.threads[me].buffer.push_back((addr, val));
        } else {
            Self::flush_buffer(&mut st, me);
            storage.store(val, Ordering::SeqCst);
        }
        if st.trace.len() < self.trace_cap {
            let how = if buffered { "buf" } else { "mem" };
            let line = format!("t{me}: {what} @{addr:#x} = {val:#x} ({how})");
            st.trace.push(line);
        }
    }

    fn rmw(
        &self,
        storage: &RealU64,
        _order: Ordering,
        what: &'static str,
        f: &mut dyn FnMut(u64) -> Option<u64>,
    ) -> (u64, bool) {
        if std::thread::panicking() {
            let old = storage.load(Ordering::SeqCst);
            let applied = match f(old) {
                Some(new) => {
                    storage.store(new, Ordering::SeqCst);
                    true
                }
                None => false,
            };
            return (old, applied);
        }
        self.yield_point(what);
        let me = VTID.with(|v| v.get());
        let addr = storage as *const RealU64 as usize;
        let mut st = lock(self);
        // RMWs are full barriers on TSO: drain the buffer, then act on
        // memory atomically (we hold the scheduler lock; nothing races).
        Self::flush_buffer(&mut st, me);
        let old = storage.load(Ordering::SeqCst);
        let applied = match f(old) {
            Some(new) => {
                storage.store(new, Ordering::SeqCst);
                true
            }
            None => false,
        };
        if st.trace.len() < self.trace_cap {
            let line = format!("t{me}: {what} @{addr:#x} old={old:#x} applied={applied}");
            st.trace.push(line);
        }
        (old, applied)
    }

    fn fence(&self, order: Ordering, what: &'static str) {
        if std::thread::panicking() {
            return;
        }
        // Under TSO only the SeqCst fence does anything (drain own buffer);
        // acquire/release ordering is implicit. Non-SeqCst fences are not
        // even scheduling points, keeping state spaces small.
        if order != Ordering::SeqCst {
            return;
        }
        self.yield_point(what);
        let me = VTID.with(|v| v.get());
        let mut st = lock(self);
        Self::flush_buffer(&mut st, me);
        if st.trace.len() < self.trace_cap {
            let line = format!("t{me}: {what} (SeqCst, drained)");
            st.trace.push(line);
        }
    }

    fn critical_enter(&self) {
        if std::thread::panicking() {
            return;
        }
        // Entering an SC section is itself one scheduling point; the whole
        // section then runs as part of this step.
        self.yield_point("critical");
        let me = VTID.with(|v| v.get());
        let mut st = lock(self);
        Self::flush_buffer(&mut st, me);
        st.threads[me].critical += 1;
    }

    fn critical_exit(&self) {
        if std::thread::panicking() {
            return;
        }
        let me = VTID.with(|v| v.get());
        let mut st = lock(self);
        if st.threads[me].critical > 0 {
            st.threads[me].critical -= 1;
        }
    }
}
