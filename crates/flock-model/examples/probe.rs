//! Scratch probe for sizing model-test schedule spaces (dev tool).
//! `cargo run --release -p flock-model --example probe -- <case> [budget]`

use std::sync::Arc;

use flock_model::{Config, explore};
use flock_sync::atomic::{AtomicU64, Ordering};

fn epoch_body() {
    struct Canary(Arc<core::sync::atomic::AtomicBool>);
    impl Drop for Canary {
        fn drop(&mut self) {
            self.0.store(true, core::sync::atomic::Ordering::SeqCst);
        }
    }
    let freed = Arc::new(core::sync::atomic::AtomicBool::new(false));
    let slot = Arc::new(AtomicU64::new(0));
    let ptr = flock_epoch::alloc(Canary(Arc::clone(&freed)));
    slot.store(ptr as usize as u64, Ordering::SeqCst);

    let (s2, f2) = (Arc::clone(&slot), Arc::clone(&freed));
    let reader = flock_model::spawn(move || {
        let guard = flock_epoch::pin();
        let p = s2.load(Ordering::Acquire);
        if p != 0 {
            assert!(!f2.load(core::sync::atomic::Ordering::SeqCst), "freed!");
            let _ = s2.load(Ordering::Acquire);
            assert!(!f2.load(core::sync::atomic::Ordering::SeqCst), "freed!");
        }
        drop(guard);
        flock_sync::atomic::fence(Ordering::SeqCst);
    });

    let s2 = Arc::clone(&slot);
    let reclaimer = flock_model::spawn(move || {
        let p = s2.swap(0, Ordering::SeqCst);
        if p != 0 {
            let g = flock_epoch::pin();
            // SAFETY: unlinked above, retired once, pinned.
            unsafe { flock_epoch::retire(p as usize as *mut Canary) };
            drop(g);
            flock_epoch::try_advance();
            flock_epoch::try_advance();
            flock_epoch::collect_now();
        }
        flock_sync::atomic::fence(Ordering::SeqCst);
    });
    reader.join();
    reclaimer.join();
}

fn trivial_body() {
    let c = Arc::new(AtomicU64::new(0));
    let c2 = Arc::clone(&c);
    let t = flock_model::spawn(move || {
        c2.fetch_add(1, Ordering::SeqCst);
    });
    c.fetch_add(1, Ordering::SeqCst);
    t.join();
}

fn solo_body() {
    let c = AtomicU64::new(0);
    for _ in 0..10 {
        c.fetch_add(1, Ordering::SeqCst);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(|s| s.as_str()) == Some("overhead") {
        return bench_overhead();
    }
    let budget: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(20_000);
    let preempt: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(1);
    let t0 = std::time::Instant::now();
    let report = explore(
        Config {
            max_schedules: budget,
            tso: true,
            max_preemptions: preempt,
            ..Config::default()
        },
        match args.get(1).map(|s| s.as_str()) {
            Some("trivial") => trivial_body as fn(),
            Some("solo") => solo_body as fn(),
            _ => epoch_body as fn(),
        },
    );
    let dt = t0.elapsed();
    println!(
        "steps={} tier2_sleeps={}",
        flock_model::STAT_STEPS.load(std::sync::atomic::Ordering::Relaxed),
        flock_model::STAT_SLEEPS.load(std::sync::atomic::Ordering::Relaxed)
    );
    println!(
        "schedules={} complete={} pruned={} failure={} in {:.2?} ({:.0}/s)",
        report.schedules_run,
        report.complete,
        report.pruned,
        report.failure.is_some(),
        dt,
        report.schedules_run as f64 / dt.as_secs_f64()
    );
}

#[allow(dead_code)]
fn bench_overhead() {
    // 100 replays of the single-schedule solo body: isolates fixed cost.
    let t0 = std::time::Instant::now();
    for _ in 0..100 {
        let r = flock_model::replay(Config::sc(), &[], solo_body);
        assert!(r.failure.is_none());
    }
    println!("100 solo replays: {:.2?}", t0.elapsed());
    // Same but with one spawned thread.
    let t0 = std::time::Instant::now();
    for _ in 0..100 {
        let r = flock_model::replay(Config::sc(), &[], trivial_body);
        assert!(r.failure.is_none());
    }
    println!("100 trivial replays: {:.2?}", t0.elapsed());
}
