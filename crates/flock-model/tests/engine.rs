//! Self-tests of the model-checking engine: the checker must (a) find
//! classic interleaving and store-buffering bugs in small synthetic
//! programs, and (b) report green, complete explorations for their correct
//! counterparts. These validate the harness itself before the protocol
//! suite (`model_tests.rs`) leans on it.

use std::sync::Arc;
use std::sync::Mutex;

use flock_model::{Config, explore};
use flock_sync::atomic::{AtomicU64, Ordering};

/// Model tests share process-global registries (thread ids, the epoch
/// collector) and the mutant knobs; serialize them.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// A non-atomic increment (load; store) from two threads must lose an
/// update in some interleaving — the checker has to find it.
#[test]
fn finds_lost_update() {
    let _g = serial();
    let report = explore(Config::sc(), || {
        let c = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&c);
        let t = flock_model::spawn(move || {
            let v = c2.load(Ordering::SeqCst);
            c2.store(v + 1, Ordering::SeqCst);
        });
        let v = c.load(Ordering::SeqCst);
        c.store(v + 1, Ordering::SeqCst);
        t.join();
        assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
    });
    let f = report.assert_finds_bug();
    assert!(f.message.contains("lost update"), "{}", f.message);
}

/// The same increments made atomic (fetch_add) are correct under every
/// schedule, and the space is small enough to exhaust.
#[test]
fn atomic_increments_verify() {
    let _g = serial();
    let report = explore(Config::sc(), || {
        let c = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&c);
        let t = flock_model::spawn(move || {
            c2.fetch_add(1, Ordering::SeqCst);
        });
        c.fetch_add(1, Ordering::SeqCst);
        t.join();
        assert_eq!(c.load(Ordering::SeqCst), 2);
    });
    report.assert_exhaustive_ok();
    assert!(report.schedules_run > 1, "must explore > 1 interleaving");
}

/// Dekker store-buffering litmus (x = 1; read y || y = 1; read x): under
/// TSO with only `Release` stores, both threads can read 0 — the checker
/// must exhibit it. This is the exact reordering the announce fence
/// defends against.
#[test]
fn tso_exhibits_store_buffering() {
    let _g = serial();
    let report = explore(Config::tso(), || {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t = flock_model::spawn(move || {
            x2.store(1, Ordering::Release);
            y2.load(Ordering::Acquire)
        });
        y.store(1, Ordering::Release);
        let rx = x.load(Ordering::Acquire);
        let ry = t.join();
        assert!(
            rx == 1 || ry == 1,
            "both loads returned 0: store-buffering observed"
        );
    });
    let f = report.assert_finds_bug();
    assert!(f.message.contains("store-buffering"), "{}", f.message);
}

/// The same litmus with `SeqCst` fences after the stores is correct under
/// TSO — and the checker must prove it exhaustively, flush choices
/// included.
#[test]
fn tso_fences_forbid_store_buffering() {
    let _g = serial();
    let report = explore(Config::tso(), || {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t = flock_model::spawn(move || {
            x2.store(1, Ordering::Release);
            flock_sync::atomic::fence(Ordering::SeqCst);
            y2.load(Ordering::Acquire)
        });
        y.store(1, Ordering::Release);
        flock_sync::atomic::fence(Ordering::SeqCst);
        let rx = x.load(Ordering::Acquire);
        let ry = t.join();
        assert!(rx == 1 || ry == 1, "SB appeared despite SeqCst fences");
    });
    report.assert_exhaustive_ok();
}

/// Same seed → same schedules → same (first) counterexample; the failure
/// must also replay deterministically.
#[test]
fn deterministic_and_replayable() {
    let _g = serial();
    let body = || {
        let c = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&c);
        let t = flock_model::spawn(move || {
            let v = c2.load(Ordering::SeqCst);
            c2.store(v + 1, Ordering::SeqCst);
        });
        let v = c.load(Ordering::SeqCst);
        c.store(v + 1, Ordering::SeqCst);
        t.join();
        assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
    };
    let cfg = Config {
        seed: Some(42),
        samples: 500,
        ..Config::sc()
    };
    let r1 = explore(cfg.clone(), body);
    let r2 = explore(cfg, body);
    let f1 = r1.assert_finds_bug();
    let f2 = r2.assert_finds_bug();
    assert_eq!(f1.schedule, f2.schedule, "same seed, same counterexample");
    assert_eq!(r1.schedules_run, r2.schedules_run);

    // Replaying the reported schedule reproduces the failure 1:1.
    let replayed = flock_model::replay(Config::sc(), &f1.schedule, body);
    let rf = replayed
        .failure
        .expect("replay of a failing schedule must fail");
    assert!(rf.message.contains("lost update"), "{}", rf.message);
}

/// A join cycle… cannot be written with this API, but a thread joining a
/// never-scheduled sibling while holding the only runnable slot cannot
/// deadlock either: join is a scheduling point and the sibling runs.
/// What *can* deadlock is helping-disabled spinning etc.; here we just pin
/// the baseline: sequential spawn/join chains complete and explore fully.
#[test]
fn spawn_join_chain_completes() {
    let _g = serial();
    let report = explore(Config::sc(), || {
        let a = flock_model::spawn(|| 1u64);
        let b = flock_model::spawn(|| 2u64);
        assert_eq!(a.join() + b.join(), 3);
    });
    report.assert_exhaustive_ok();
}
