//! The protocol model-checking suite: the load-bearing invariants of
//! "Lock-free locks revisited", checked exhaustively at small scope against
//! the **real implementation** (the protocol crates compiled with their
//! `model` feature route every atomic through the checker).
//!
//! Every invariant test states its scope (threads / ops / preemption
//! bound / memory model) and asserts `complete && pruned == 0` — the claim
//! is "no violation in the *entire* bounded schedule space", not "no
//! violation in the schedules we happened to try". Every invariant test is
//! paired with at least one **sanity mutant**: a deliberate weakening of
//! the real code (`mutants` knobs in the protocol crates) that the checker
//! must catch, proving the harness detects the bug class it exists for.
//!
//! Scope bounds shared by the suite: model builds shrink the ABA tag space
//! to `TAG_LIMIT = 8` (wraparound reachable), `tso` configs model store
//! buffers (the store–load reordering class; see `flock_sync::atomic`),
//! and thread counts stay ≤ 3 plus the test driver.

use std::sync::Arc;
use std::sync::Mutex;

use flock_core::{Lock, Mutable};
use flock_model::{Config, explore};
use flock_sync::atomic::{AtomicU64, Ordering};
use flock_sync::{TagAnnouncements, tid};

/// Model tests share process-global registries (thread ids, the epoch
/// collector, the announcement table) and the mutant knobs; serialize them.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// RAII setter for a mutant knob: never leaks an enabled mutant into the
/// next test, even if an assertion unwinds.
struct Knob(&'static core::sync::atomic::AtomicBool);

impl Knob {
    fn set(b: &'static core::sync::atomic::AtomicBool) -> Self {
        b.store(true, core::sync::atomic::Ordering::SeqCst);
        Knob(b)
    }
}

impl Drop for Knob {
    fn drop(&mut self) {
        self.0.store(false, core::sync::atomic::Ordering::SeqCst);
    }
}

// ---------------------------------------------------------------- announce

/// The announce/Dekker pair, component level, against the real
/// `TagAnnouncements` (fence-anchored weak-target variant — the one x86 CI
/// cannot falsify) with the descriptor's weak-side done orderings mirrored
/// on a flag cell.
///
/// Protocol: the helper announces `(L, tag)` and then reads `done`
/// (Acquire, as `is_done_announced`); it may CAS only if `done` was false.
/// The owner sets `done` (Release, as `set_done`), releases the lock
/// (SeqCst RMW, as the unlock CAM), re-acquires it (SeqCst RMW), and scans
/// for a reissuable tag. **Invariant (no lost announcement):** it is never
/// the case that the scan reissues the tag *and* the helper proceeds to
/// CAS — one side of the Dekker pair must see the other.
///
/// Scope: 2 threads, 1 announcement, TSO, ≤2 preemptions, exhaustive.
fn dekker_body() {
    let table = Arc::new(TagAnnouncements::new());
    let done = Arc::new(AtomicU64::new(0));
    let lock_word = Arc::new(AtomicU64::new(1)); // 1 = held by the thunk's owner
    const L: usize = 0x1000;
    const TAG: u16 = 5;

    let (t2, d2) = (Arc::clone(&table), Arc::clone(&done));
    let helper = flock_model::spawn(move || {
        let me = tid::current();
        // The helper is mid-`Mutable::store`: announce, then revalidate.
        t2.announce(me, L, TAG);
        // `is_done_announced`, weak-target variant: Acquire load anchored
        // by the fence inside `announce`.
        let done_seen = d2.load(Ordering::Acquire) == 1;
        !done_seen // true = helper would issue its CAS
    });

    // Owner: finish the thunk, set done, unlock; then (as the next lock
    // holder) pick the next tag for the location.
    done.store(1, Ordering::Release); // set_done (weak variant)
    lock_word.swap(0, Ordering::SeqCst); // unlock CAM (SeqCst RMW)
    lock_word.swap(1, Ordering::SeqCst); // next holder's acquire (SeqCst RMW)
    let reissued = table.next_free_tag(L, TAG) == TAG;

    let would_cas = helper.join();
    assert!(
        !(would_cas && reissued),
        "lost announcement: tag reissued while the announcing helper \
         proceeds with its stale CAS"
    );
}

#[test]
fn announce_dekker_no_lost_announcement() {
    let _g = serial();
    let report = explore(Config::tso(), dekker_body);
    report.assert_exhaustive_ok();
    assert!(report.schedules_run > 10, "space suspiciously small");
}

/// Sanity mutant: drop the announcer-side fence — the announcement parks in
/// the helper's store buffer past its done-check, the scan misses it, and
/// the checker must surface the lost announcement.
#[test]
fn announce_dekker_mutant_skip_fence_is_caught() {
    let _g = serial();
    let _k = Knob::set(&flock_sync::announce::mutants::SKIP_ANNOUNCE_FENCE);
    let report = explore(Config::tso(), dekker_body);
    let f = report.assert_finds_bug();
    assert!(f.message.contains("lost announcement"), "{}", f.message);
}

// ---------------------------------------------------------------- try_lock

/// Full-stack `try_lock`: two threads, one lock, each runs one
/// increment-thunk through the real lock-free path (pin, descriptor,
/// install CAM, helping, thunk log, announcement, unlock CAM, dispose).
///
/// **Invariants:** (a) thunk effects apply exactly once each — the counter
/// equals the number of successful acquisitions; (b) at least one thread
/// acquires; (c) the lock ends released.
///
/// Scope: 2 threads, 1 op each, SC, ≤2 preemptions, exhaustive.
fn try_lock_body() {
    let lock = Arc::new(Lock::new());
    let counter = Arc::new(Mutable::new(0u64));

    let (l2, c2) = (Arc::clone(&lock), Arc::clone(&counter));
    let t = flock_model::spawn(move || {
        let c3 = Arc::clone(&c2);
        l2.try_lock(move || c3.store(c3.load() + 1)).is_some()
    });
    let c3 = Arc::clone(&counter);
    let mine = lock.try_lock(move || c3.store(c3.load() + 1)).is_some();
    let theirs = t.join();

    let acquired = mine as u64 + theirs as u64;
    assert!(acquired >= 1, "both try_locks failed on a free lock");
    assert_eq!(
        counter.load(),
        acquired,
        "thunk effects not exactly-once (helping replay diverged?)"
    );
    assert!(!lock.is_locked(), "lock leaked a hold");
}

#[test]
fn try_lock_effects_exactly_once_under_helping() {
    let _g = serial();
    let report = explore(Config::sc(), try_lock_body);
    report.assert_exhaustive_ok();
    assert!(report.schedules_run > 100, "space suspiciously small");
}

/// Sanity mutant: log commits stop agreeing (every committer "wins" with
/// its own value), so a helper's replay diverges from the owner's run and
/// effects double-apply. The checker must catch it.
#[test]
fn try_lock_mutant_log_no_agreement_is_caught() {
    let _g = serial();
    let _k = Knob::set(&flock_core::mutants::LOG_NO_AGREEMENT);
    let report = explore(Config::sc(), try_lock_body);
    let f = report.assert_finds_bug();
    assert!(f.message.contains("exactly-once"), "{}", f.message);
}

// -------------------------------------------------------------------- ccas

/// ccas idempotence with helpers racing the owner through a multi-store
/// thunk: the owner's critical section performs two dependent stores; every
/// contender that finds the lock busy replays the same thunk via helping.
/// The tagged-word ccas plus log agreement must make each logical store hit
/// memory exactly once no matter how runs interleave.
///
/// `n_helpers` spawns that many racing threads (their own try_locks also
/// count when they acquire).
fn ccas_body(n_helpers: usize) {
    let lock = Arc::new(Lock::new());
    let counter = Arc::new(Mutable::new(0u64));

    let mut handles = Vec::new();
    for _ in 0..n_helpers {
        let (l2, c2) = (Arc::clone(&lock), Arc::clone(&counter));
        handles.push(flock_model::spawn(move || {
            let c3 = Arc::clone(&c2);
            l2.try_lock(move || {
                // Two dependent stores: replay divergence on either the
                // loads or the tag agreement shows up as a wrong total.
                c3.store(c3.load() + 1);
                c3.store(c3.load() + 1);
            })
            .is_some()
        }));
    }
    let c3 = Arc::clone(&counter);
    let mine = lock
        .try_lock(move || {
            c3.store(c3.load() + 1);
            c3.store(c3.load() + 1);
        })
        .is_some();

    let mut acquired = mine as u64;
    for h in handles {
        acquired += h.join() as u64;
    }
    assert!(acquired >= 1);
    assert_eq!(
        counter.load(),
        2 * acquired,
        "a store applied more or less than once per acquisition"
    );
}

/// Scope: owner + 1 helper, SC, ≤2 preemptions, exhaustive.
#[test]
fn ccas_owner_one_helper_exhaustive() {
    let _g = serial();
    let report = explore(Config::sc(), || ccas_body(1));
    report.assert_exhaustive_ok();
}

/// Scope: owner + 2 helpers ("two helpers race an owner"), SC, ≤1
/// preemption, exhaustive. One preemption suffices for the canonical race:
/// the owner is preempted mid-thunk, then both helpers run the same
/// descriptor back to back (the second observing `done`/log state of the
/// first) before the owner resumes and replays.
#[test]
fn ccas_two_helpers_race_owner_exhaustive() {
    let _g = serial();
    let report = explore(
        Config {
            max_preemptions: 1,
            ..Config::sc()
        },
        || ccas_body(2),
    );
    report.assert_exhaustive_ok();
}

/// Deeper (non-exhaustive, seeded) sweep of the 3-thread space at 3
/// preemptions: same invariant, fixed seed → fully reproducible.
#[test]
fn ccas_two_helpers_seeded_sweep() {
    let _g = serial();
    let report = explore(
        Config {
            max_preemptions: 3,
            seed: Some(0xF10C4),
            samples: 400,
            ..Config::sc()
        },
        || ccas_body(2),
    );
    assert!(report.failure.is_none(), "{}", report.failure.unwrap());
    assert_eq!(report.pruned, 0);
}

/// Sanity mutant: loads stop committing to the thunk log, so replays read
/// whatever is current instead of what the first run saw — the classic
/// double-increment. The checker must catch it at the smallest scope.
#[test]
fn ccas_mutant_uncommitted_loads_is_caught() {
    let _g = serial();
    let _k = Knob::set(&flock_core::mutants::SKIP_LOAD_COMMIT);
    let report = explore(Config::sc(), || ccas_body(1));
    let f = report.assert_finds_bug();
    assert!(
        f.message.contains("more or less than once"),
        "{}",
        f.message
    );
}

// ------------------------------------------------------------------- epoch

/// Epoch reclamation: a retirement can never be freed while a thread that
/// observed the object under an epoch guard is still pinned.
///
/// The **driver** plays the reader: it pins, reads a shared slot, and —
/// having seen a non-null pointer — asserts (twice, across scheduling
/// points) that the object has not been dropped. The spawned thread is the
/// reclaimer: it unlinks the object, retires it, drives the epoch forward
/// and collects. The canary's `Drop` records the free. (Roles matter for
/// the preemption budget: with the reader driving, the mutant's
/// use-after-free schedule needs a single preemption — pause the reader
/// between its two observations, run the reclaimer to completion, switch
/// back free.)
///
/// Scope: 2 threads, 1 object, TSO, preemption bound per caller,
/// exhaustive at bound 1 plus a seeded bound-3 sweep.
fn epoch_body() {
    struct Canary(Arc<core::sync::atomic::AtomicBool>);
    impl Drop for Canary {
        fn drop(&mut self) {
            self.0.store(true, core::sync::atomic::Ordering::SeqCst);
        }
    }

    let freed = Arc::new(core::sync::atomic::AtomicBool::new(false));
    let slot = Arc::new(AtomicU64::new(0));
    let ptr = flock_epoch::alloc(Canary(Arc::clone(&freed)));
    slot.store(ptr as usize as u64, Ordering::SeqCst);

    let s2 = Arc::clone(&slot);
    let reclaimer = flock_model::spawn(move || {
        let p = s2.swap(0, Ordering::SeqCst); // unlink
        if p != 0 {
            let g = flock_epoch::pin();
            // SAFETY: unlinked above; retired exactly once; pinned.
            unsafe { flock_epoch::retire(p as usize as *mut Canary) };
            drop(g);
            // Two advances put the epoch two past the retire stamp — the
            // minimum for the collector to free it absent a reservation.
            flock_epoch::try_advance();
            flock_epoch::try_advance();
            flock_epoch::collect_now();
        }
        // Drain this thread's buffer (the unpin store) so it does not
        // linger as a flush choice at every remaining decision point: a
        // pure state-space bound — the hazard under test (the *reader's*
        // reservation store delayed past its reads) is elsewhere.
        flock_sync::atomic::fence(Ordering::SeqCst);
    });

    // The driver is the reader (two vthreads total — keeps the exhaustive
    // space tractable without losing reader-vs-reclaimer interleavings).
    let guard = flock_epoch::pin();
    let p = slot.load(Ordering::Acquire);
    if p != 0 {
        assert!(
            !freed.load(core::sync::atomic::Ordering::SeqCst),
            "retired object freed while a pinned reader holds it"
        );
        // A second observation across another scheduling point widens the
        // window in which an early free would be caught.
        let _ = slot.load(Ordering::Acquire);
        assert!(
            !freed.load(core::sync::atomic::Ordering::SeqCst),
            "retired object freed while a pinned reader holds it"
        );
    }
    drop(guard);
    reclaimer.join();
}

#[test]
fn epoch_pin_blocks_reclaim() {
    let _g = serial();
    let report = explore(
        Config {
            max_preemptions: 1,
            ..Config::tso()
        },
        epoch_body,
    );
    report.assert_exhaustive_ok();
    assert!(report.schedules_run > 100, "space suspiciously small");
}

/// Deeper (non-exhaustive, seeded) sweep at 3 preemptions: same invariant,
/// fixed seed → fully reproducible.
#[test]
fn epoch_pin_blocks_reclaim_seeded_sweep() {
    let _g = serial();
    let report = explore(
        Config {
            max_preemptions: 3,
            seed: Some(0xEB0C4),
            samples: 400,
            ..Config::tso()
        },
        epoch_body,
    );
    assert!(report.failure.is_none(), "{}", report.failure.unwrap());
    assert_eq!(report.pruned, 0);
}

/// Sanity mutant: skip the pin-publication fence. The reservation parks in
/// the reader's store buffer, the collector's scan misses it, and the
/// object is freed under the reader — the checker must catch the
/// use-after-free window.
#[test]
fn epoch_mutant_skip_pin_fence_is_caught() {
    let _g = serial();
    let _k = Knob::set(&flock_epoch::mutants::SKIP_PIN_FENCE);
    let report = explore(
        Config {
            max_preemptions: 1,
            ..Config::tso()
        },
        epoch_body,
    );
    let f = report.assert_finds_bug();
    assert!(
        f.message.contains("freed while a pinned reader"),
        "{}",
        f.message
    );
}

// ---------------------------------------------------------------- tag wrap

/// RAII override of the effective lock-word tag space (model-only knob):
/// never leaks a shrunken tag space into the next test.
struct TagLimit;

impl TagLimit {
    fn set(limit: u16) -> Self {
        flock_sync::pack::model_tag_limit::set(limit);
        TagLimit
    }
}

impl Drop for TagLimit {
    fn drop(&mut self) {
        flock_sync::pack::model_tag_limit::set(flock_sync::pack::TAG_LIMIT);
    }
}

/// Lock-word tag wraparound under a stalled helper — PR 3's documented
/// "residual window", closed for real by the descriptor generation counter.
///
/// With the effective tag space shrunk to 2, every install/unlock pair
/// wraps the lock word, so the worker's *second* try_lock reinstalls its
/// pool-reused descriptor at the **identical packed word** (tag, ptr) that
/// was observed during the first — the reincarnation a stalled helper must
/// reject. The helper is split along its real seam (`model_probe`:
/// observe, then help) across two threads, so the checker can stall it
/// arbitrarily long without spending preemptions inside `try_lock`: an
/// observer thread captures the packed word once, and a helper thread
/// later runs the real help path against that observation. Acting on the
/// stale observation, the pre-fix help path (raw word-only revalidation,
/// unconditional unlock CAM) can CAM-release the wrapped second install
/// before its thunk ever ran — making the worker's own acquisition fail —
/// or replay a recycled descriptor ("descriptor thunk called before set").
///
/// **Invariants:** (a) both worker try_locks succeed — the observer and
/// helper threads never acquire, and a correct helper either helps the
/// *current* incarnation to completion or does nothing, so nothing can
/// make the worker's install fail; (b) the lock ends released; (c) no
/// panic.
fn tag_wrap_body() {
    let lock = Arc::new(Lock::new());
    let obs_cell = Arc::new(AtomicU64::new(0));

    // Worker: two complete try_locks — one thread, so the second op
    // pool-reuses the first op's descriptor and (tag space 2) reinstalls
    // the identical packed word. Op 1's own thunk records the packed word
    // of its hold into `obs_cell`: the helper's observation, captured with
    // zero scheduling cost (the load is the thunk's own committed load, so
    // every replay stores the same value — an idempotent effect).
    let l1 = Arc::clone(&lock);
    let o1 = Arc::clone(&obs_cell);
    let worker = flock_model::spawn(move || {
        let mut acquired = 0usize;
        let (l2, o2) = (Arc::clone(&l1), Arc::clone(&o1));
        if l1
            .try_lock(move || o2.store(flock_core::model_probe::observe(&l2), Ordering::SeqCst))
            .is_some()
        {
            acquired += 1;
        }
        if l1.try_lock(|| ()).is_some() {
            acquired += 1;
        }
        acquired
    });
    // Stalled helper: run the real help path against the op-1 observation,
    // however long after op 1 the scheduler lets it act.
    let (l3, o3) = (Arc::clone(&lock), Arc::clone(&obs_cell));
    let helper = flock_model::spawn(move || {
        let obs = o3.load(Ordering::SeqCst);
        if obs != 0 {
            flock_core::model_probe::help_observed(&l3, obs);
        }
    });

    let acquired = worker.join();
    helper.join();
    assert_eq!(
        acquired, 2,
        "a worker try_lock failed on a lock nobody else ever acquires \
         (stale helper corrupted the wrapped lock word?)"
    );
    assert!(!lock.is_locked(), "lock leaked a hold");
}

/// Scope: worker + stalled helper (split along the real observe/help
/// seam), one lock, tag space 2 (wraparound on every reinstall), SC, ≤3
/// preemptions, exhaustive (~26k schedules). Three preemptions are what
/// the violating shape needs: worker paused between its ops (the helper
/// marks and fails revalidation against the in-between word), helper
/// paused before its unlock CAM, worker paused after the wrapped second
/// install (the stale CAM's target).
#[test]
fn lock_word_tag_wrap_stale_helper_rejected() {
    let _g = serial();
    let _t = TagLimit::set(2);
    let report = explore(
        Config {
            max_preemptions: 3,
            max_schedules: 1_000_000,
            ..Config::sc()
        },
        tag_wrap_body,
    );
    report.assert_exhaustive_ok();
    assert!(report.schedules_run > 1_000, "space suspiciously small");
}

/// Deeper (non-exhaustive, seeded) sweep through the unsplit end-to-end
/// path: a second thread's real `try_lock` is the helper, 3 worker ops,
/// counting thunks (exactly-once), 6 preemptions, fixed seed →
/// reproducible.
#[test]
fn lock_word_tag_wrap_seeded_sweep() {
    let _g = serial();
    let _t = TagLimit::set(2);
    let report = explore(
        Config {
            max_preemptions: 6,
            seed: Some(0x7A6_17A6),
            samples: 300,
            ..Config::sc()
        },
        || {
            let lock = Arc::new(Lock::new());
            let counter = Arc::new(Mutable::new(0u64));
            let (l2, c2) = (Arc::clone(&lock), Arc::clone(&counter));
            let helper = flock_model::spawn(move || {
                let c3 = Arc::clone(&c2);
                l2.try_lock(move || c3.store(c3.load() + 1)).is_some()
            });
            let mut acquired = 0u64;
            for _ in 0..3 {
                let c3 = Arc::clone(&counter);
                if lock.try_lock(move || c3.store(c3.load() + 1)).is_some() {
                    acquired += 1;
                }
            }
            let theirs = helper.join() as u64;
            assert_eq!(
                counter.load(),
                acquired + theirs,
                "thunk effects not exactly-once across tag wraparound"
            );
            assert!(!lock.is_locked(), "lock leaked a hold");
        },
    );
    assert!(report.failure.is_none(), "{}", report.failure.unwrap());
    assert_eq!(report.pruned, 0);
}

/// Sanity mutant: drop the generation checks (pre-fix help path — raw
/// word-only revalidation, unconditional unlock CAM). Across an exact
/// tag wraparound the stale helper acts on the reincarnated packed word,
/// and the checker must surface a violation (a failed worker acquisition,
/// a leaked hold, or the recycled-descriptor crash).
#[test]
fn lock_word_tag_wrap_mutant_skip_gen_check_is_caught() {
    let _g = serial();
    let _t = TagLimit::set(2);
    let _k = Knob::set(&flock_core::mutants::SKIP_GEN_CHECK);
    let report = explore(
        Config {
            max_preemptions: 3,
            max_schedules: 1_000_000,
            ..Config::sc()
        },
        tag_wrap_body,
    );
    let f = report.assert_finds_bug();
    assert!(
        f.message.contains("worker try_lock failed")
            || f.message.contains("lock leaked a hold")
            || f.message.contains("descriptor thunk called before set"),
        "unexpected failure mode: {}",
        f.message
    );
}

// ---------------------------------------------------------- validated read

/// The optimistic-read discipline (`Lock::version` / `Lock::validate`
/// bracketing unlogged `Acquire` loads — the PR 7 read path): a read whose
/// bracket **validates** can never return a torn multi-field snapshot.
///
/// A writer mutates two `Mutable` fields inside one critical section,
/// preserving `a == b` at every quiescent point. The reader captures the
/// lock version, reads both fields with `load_acquire`, and re-validates:
/// `version()` returns `None` while the lock is held, every install CAS
/// bumps the lock word's ABA tag (both lock modes), and `validate`
/// re-reads the full packed word after an `Acquire` fence — so a
/// successful bracket proves no critical section committed in between,
/// i.e. the two loads saw a quiescent pair.
///
/// **Invariant:** a validated snapshot satisfies `a == b`. (A failed
/// bracket returns nothing and is not under test: structures fall back to
/// the committed-read path after bounded retries.)
///
/// Scope: writer + reading driver, one lock, two fields, SC, ≤2
/// preemptions, exhaustive. (SC like the other full-stack lock tests:
/// the writer runs the entire lock-free try_lock protocol, and TSO store
/// buffers over that many atomics blow past the schedule budget; the
/// bracket's fence-anchored orderings are exercised componentwise by the
/// dekker and epoch TSO tests.)
fn validated_read_body(validate: bool) {
    let lock = Arc::new(Lock::new());
    let a = Arc::new(Mutable::new(0u64));
    let b = Arc::new(Mutable::new(0u64));

    let (l2, a2, b2) = (Arc::clone(&lock), Arc::clone(&a), Arc::clone(&b));
    let writer = flock_model::spawn(move || {
        let (a3, b3) = (Arc::clone(&a2), Arc::clone(&b2));
        let _ = l2.try_lock(move || {
            // Two dependent stores: the pair is torn exactly when a reader
            // observes the window between them.
            a3.store(1);
            b3.store(1);
        });
    });

    // The driver is the reader: one optimistic attempt, no retry loop (a
    // failed bracket is the fallback path, exercised by the structure
    // suites; the model question is purely "can a *validated* bracket
    // tear").
    let snap = if validate {
        (|| {
            let v0 = lock.version()?;
            let x = a.load_acquire();
            let y = b.load_acquire();
            lock.validate(v0).then_some((x, y))
        })()
    } else {
        // Mutant reader: same unlogged loads, bracket dropped.
        Some((a.load_acquire(), b.load_acquire()))
    };
    if let Some((x, y)) = snap {
        assert_eq!(x, y, "validated optimistic read returned a torn pair");
    }
    writer.join();
}

#[test]
fn validated_read_never_torn() {
    let _g = serial();
    let report = explore(Config::sc(), || validated_read_body(true));
    report.assert_exhaustive_ok();
    assert!(report.schedules_run > 10, "space suspiciously small");
}

/// Sanity mutant (harness-level): drop the version bracket and keep the
/// same unlogged `Acquire` loads — the checker must surface the torn pair,
/// proving the exhaustive pass above is detecting the bug class the
/// bracket exists to prevent.
#[test]
fn validated_read_mutant_no_bracket_is_caught() {
    let _g = serial();
    let report = explore(Config::sc(), || validated_read_body(false));
    let f = report.assert_finds_bug();
    assert!(f.message.contains("torn pair"), "{}", f.message);
}

// --------------------------------------------------------- fifo admission

/// Full-stack FIFO strict locking (ISSUE 10): `driver_ops + 1` increments
/// through the real policy-monomorphized wait loop on a FIFO lock —
/// arrival publication, oldest-waiter scans, proxy admission of a
/// descheduled older arrival (`Admit::Proxy`), release-time constant
/// handoff, and the handed-to-me fast path are all reachable in the
/// explored space (DEFER_LIMIT is 3 under the model feature, so the barge
/// valve is reachable too).
///
/// **Invariants:** (a) thunk effects apply exactly once each — the counter
/// equals the op count (a handoff that installed a completed or recycled
/// descriptor would replay effects or lose them); (b) the lock ends
/// released with no stale handoff left installed — a fresh `try_lock`
/// must succeed.
fn fifo_strict_body(driver_ops: usize) {
    let lock = Arc::new(Lock::new_with(flock_core::Admission::Fifo));
    let counter = Arc::new(Mutable::new(0u64));

    let (l2, c2) = (Arc::clone(&lock), Arc::clone(&counter));
    let waiter = flock_model::spawn(move || {
        let c3 = Arc::clone(&c2);
        l2.lock(move || c3.store(c3.load() + 1));
    });
    for _ in 0..driver_ops {
        let c3 = Arc::clone(&counter);
        lock.lock(move || c3.store(c3.load() + 1));
    }
    waiter.join();

    assert_eq!(
        counter.load(),
        driver_ops as u64 + 1,
        "FIFO strict-lock effects not exactly-once (bad handoff target?)"
    );
    assert!(
        lock.try_lock(|| ()).is_some(),
        "fresh try_lock failed after all strict holders returned \
         (handoff left a stale install?)"
    );
    assert!(!lock.is_locked(), "lock leaked a hold");
}

/// Scope: driver + 1 waiter, 1 op each, FIFO lock, SC, ≤2 preemptions,
/// exhaustive. The minimal space in which release-time handoff and proxy
/// admission both occur.
#[test]
fn fifo_handoff_exactly_once() {
    let _g = serial();
    let report = explore(Config::sc(), || fifo_strict_body(1));
    report.assert_exhaustive_ok();
    assert!(report.schedules_run > 100, "space suspiciously small");
}

/// Scope: driver runs **two** strict ops against the waiter's one, SC, ≤2
/// preemptions, exhaustive. The second driver op republishes a recycled
/// pool descriptor under a fresh ticket and generation, so this space
/// contains the no-lost-wakeup shapes: a handoff racing the served
/// waiter's retraction, and wait-slot state from a completed acquisition
/// being rescanned by a later release. A waiter whose published arrival
/// were handed a completed/stale descriptor — or skipped forever — shows
/// up as a hang (schedule budget), a wrong count, or a leaked hold.
#[test]
fn fifo_handoff_no_lost_wakeup_across_reuse() {
    let _g = serial();
    let report = explore(
        Config {
            max_schedules: 1_000_000,
            ..Config::sc()
        },
        || fifo_strict_body(2),
    );
    report.assert_exhaustive_ok();
    assert!(report.schedules_run > 1_000, "space suspiciously small");
}

/// Sanity mutant: drop the candidate-validation in the wait-slot scan
/// (generation match + not-done check behind `FIFO_SKIP_VALIDATION`), so
/// releases and proxies hand the lock to completed or recycled
/// descriptors. Across descriptor reuse (the two-op driver) the checker
/// must surface a violation — a replayed/lost increment, a failed
/// acquisition, or a leaked hold.
#[test]
fn fifo_mutant_skip_validation_is_caught() {
    let _g = serial();
    let _k = Knob::set(&flock_core::mutants::FIFO_SKIP_VALIDATION);
    let report = explore(
        Config {
            max_schedules: 1_000_000,
            ..Config::sc()
        },
        || fifo_strict_body(2),
    );
    let f = report.assert_finds_bug();
    assert!(
        f.message.contains("exactly-once")
            || f.message.contains("fresh try_lock failed")
            || f.message.contains("lock leaked a hold")
            || f.message.contains("descriptor thunk called before set"),
        "unexpected failure mode: {}",
        f.message
    );
}

// --------------------------------------------------------------------- tid

/// The active-thread registry: a scan bounded by `scan_bound()` must never
/// miss a live thread's announcement, across concurrent id claims and
/// releases.
///
/// Thread C claims an id and releases it again (the thread-exit transition,
/// made schedulable). Thread A claims an id — possibly recycling C's — and
/// announces under it, then raises a flag. The driver, on seeing the flag,
/// scans: the announcement must be visible below `scan_bound()`.
///
/// Scope: 3 threads + driver's claim, SC, ≤2 preemptions, exhaustive.
fn tid_body() {
    let table = Arc::new(TagAnnouncements::new());
    let flag = Arc::new(AtomicU64::new(0));
    const L: usize = 0x2000;
    const TAG: u16 = 3;

    // The driver claims its own id first so the slot-0 floor is stable.
    let _ = tid::current();

    let churner = flock_model::spawn(move || {
        let _ = tid::current();
        // Release immediately: the exit-time transition, schedulable.
        tid::model_release_current();
    });

    let (t2, f2) = (Arc::clone(&table), Arc::clone(&flag));
    let announcer = flock_model::spawn(move || {
        let me = tid::current();
        t2.announce(me, L, TAG);
        f2.store(1, Ordering::SeqCst);
    });

    if flag.load(Ordering::SeqCst) == 1 {
        assert!(
            table.is_announced(L, TAG),
            "scan under scan_bound() missed a live thread's announcement"
        );
    }
    churner.join();
    announcer.join();
}

#[test]
fn tid_scan_bound_covers_live_claims() {
    let _g = serial();
    let report = explore(Config::sc(), tid_body);
    report.assert_exhaustive_ok();
    assert!(report.schedules_run > 10, "space suspiciously small");
}

/// Sanity mutant: the rejected lock-free lower-on-release design (PR 2's
/// module docs record why it was rejected; this machine-checks that
/// rationale). A claim racing the two-step release ends up above the
/// published bound, and the scan misses its announcement.
#[test]
fn tid_mutant_lockfree_release_is_caught() {
    let _g = serial();
    let _k = Knob::set(&flock_sync::tid::mutants::LOCKFREE_RELEASE);
    let report = explore(Config::sc(), tid_body);
    let f = report.assert_finds_bug();
    assert!(
        f.message.contains("missed a live thread's announcement"),
        "{}",
        f.message
    );
}
