//! Tiny fast PRNG for the benchmark hot path.

/// splitmix64: one multiply-xor-shift chain per output, passes BigCrush for
/// this use. The `rand` crate is used only for seeding and shuffles off the
/// hot path.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xDEAD_BEEF_FACE_CAFE,
        }
    }

    /// Next 64 random bits.
    #[inline(always)]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`.
    #[inline(always)]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift range reduction; bias is negligible for benchmarks.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    #[inline(always)]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(9);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_roughly_uniform() {
        let mut r = SplitMix64::new(11);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[r.below(8) as usize] += 1;
        }
        for c in counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} far from 10k"
            );
        }
    }
}
