//! The timed benchmark driver: prefill, warm-up, repeated runs, stats.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::rng::SplitMix64;
use crate::sparsify;
use crate::zipf::Zipfian;
use flock_api::{Map, Value};

/// One experiment configuration (one point on a paper graph).
#[derive(Debug, Clone)]
pub struct Config {
    /// Worker thread count (set above the core count to oversubscribe).
    pub threads: usize,
    /// Key range `[0, r)`; the structure is prefilled with half of it.
    pub key_range: u64,
    /// Percentage of operations that are updates (split 50/50 between
    /// insert and delete); the rest are lookups.
    pub update_percent: u32,
    /// Zipfian parameter α (0 = uniform).
    pub zipf_alpha: f64,
    /// Length of each timed run.
    pub run_duration: Duration,
    /// Timed runs after the warm-up run; the mean ± σ is reported.
    pub repeats: usize,
    /// Hash keys into a sparse 64-bit space (used for the ART benchmark,
    /// which would otherwise benefit from densely packed keys).
    pub sparsify_keys: bool,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            threads: 4,
            key_range: 100_000,
            update_percent: 50,
            zipf_alpha: 0.75,
            run_duration: Duration::from_millis(300),
            repeats: 3,
            sparsify_keys: false,
            seed: 0x5EED,
        }
    }
}

/// Aggregated result of one experiment.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Structure name.
    pub name: &'static str,
    /// Mean throughput over the timed runs, in Mop/s.
    pub mops_mean: f64,
    /// Standard deviation of the throughput, in Mop/s.
    pub mops_stddev: f64,
    /// Total operations executed across all timed runs.
    pub total_ops: u64,
    /// Operations completed by each worker thread, summed across the timed
    /// runs (index = worker index). Empty for experiments that predate the
    /// fairness metrics (e.g. hand-built measurements).
    pub per_thread_ops: Vec<u64>,
    /// Configuration this was measured under.
    pub config: Config,
}

impl Measurement {
    /// Max/min ratio of per-thread op counts — the paper-style headline
    /// fairness number (1.0 = perfectly fair). A fully starved thread
    /// (`min == 0`) makes the true ratio infinite; this returns the max
    /// count itself in that case so the number stays finite (and huge) for
    /// reports. Returns 1.0 when per-thread counts were not recorded.
    pub fn max_min_ratio(&self) -> f64 {
        let Some(&max) = self.per_thread_ops.iter().max() else {
            return 1.0;
        };
        let min = *self.per_thread_ops.iter().min().unwrap();
        if min == 0 {
            max as f64
        } else {
            max as f64 / min as f64
        }
    }

    /// Jain's fairness index over per-thread op counts:
    /// `(Σx)² / (n · Σx²)`, in `(0, 1]`; 1.0 = perfectly fair, `1/n` =
    /// one thread did everything. Returns 1.0 when counts were not
    /// recorded (or all threads did zero work).
    pub fn jain_index(&self) -> f64 {
        let n = self.per_thread_ops.len();
        if n == 0 {
            return 1.0;
        }
        let sum: f64 = self.per_thread_ops.iter().map(|&x| x as f64).sum();
        let sum_sq: f64 = self
            .per_thread_ops
            .iter()
            .map(|&x| (x as f64) * (x as f64))
            .sum();
        if sum_sq == 0.0 {
            return 1.0;
        }
        (sum * sum) / (n as f64 * sum_sq)
    }

    /// CSV row: `name,threads,range,update%,alpha,mops,stddev,maxmin,jain`.
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{:.4},{:.4},{:.4},{:.4}",
            self.name,
            self.config.threads,
            self.config.key_range,
            self.config.update_percent,
            self.config.zipf_alpha,
            self.mops_mean,
            self.mops_stddev,
            self.max_min_ratio(),
            self.jain_index()
        )
    }

    /// CSV header matching [`Measurement::csv_row`].
    pub fn csv_header() -> &'static str {
        "structure,threads,key_range,update_percent,zipf_alpha,mops,stddev,max_min_ratio,jain"
    }
}

/// Warm the allocator by allocating a large number of nodes and freeing
/// them in random order, as the paper does before its warm-up run to
/// increase consistency across runs.
pub fn shuffle_allocator(blocks: usize) {
    let mut v: Vec<Box<[u8; 64]>> = (0..blocks).map(|_| Box::new([0u8; 64])).collect();
    let mut rng = SplitMix64::new(0xA110C);
    // Fisher-Yates, then drop in the shuffled order.
    for i in (1..v.len()).rev() {
        v.swap(i, rng.below(i as u64 + 1) as usize);
    }
    drop(v);
}

/// Prefill `map` with (deterministically) half of the keys in the range,
/// inserted in **random order** — sorted insertion would degenerate the
/// unbalanced trees into chains, whereas the paper's structures are
/// "balanced in expectation due to random inserts".
fn prefill<V: Value, M: Map<u64, V> + ?Sized>(
    map: &M,
    cfg: &Config,
    vf: &(impl Fn(u64) -> V + Sync),
) {
    // Parallel prefill: partition the key space over available cores; each
    // worker shuffles its own slice, and workers interleave, so the global
    // insertion order is effectively random.
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .min(cfg.threads.max(1));
    let range = cfg.key_range;
    std::thread::scope(|s| {
        for w in 0..workers {
            let map = &*map;
            let lo = range * w as u64 / workers as u64;
            let hi = range * (w as u64 + 1) / workers as u64;
            s.spawn(move || {
                // A key is "in" the initial set if its hash is even.
                let mut keys: Vec<u64> = (lo..hi).filter(|&k| sparsify(k) & 1 == 0).collect();
                let mut rng = SplitMix64::new(cfg.seed ^ ((w as u64 + 1) * 0xF11));
                for i in (1..keys.len()).rev() {
                    keys.swap(i, rng.below(i as u64 + 1) as usize);
                }
                for k in keys {
                    let key = if cfg.sparsify_keys { sparsify(k) } else { k };
                    map.insert(key, vf(k));
                }
            });
        }
    });
}

/// One timed run; returns completed operations **per worker thread**
/// (sum for the total). `rmw` selects the update-heavy mix: the
/// `update_percent` fraction goes through native `Map::update` (an
/// in-place read-modify-write on every registry structure) instead of the
/// insert/remove split.
fn timed_run<V: Value, M: Map<u64, V> + ?Sized>(
    map: &M,
    cfg: &Config,
    run_idx: usize,
    vf: &(impl Fn(u64) -> V + Sync),
    rmw: bool,
) -> Vec<u64> {
    let stop = AtomicBool::new(false);
    let counts: Vec<AtomicU64> = (0..cfg.threads).map(|_| AtomicU64::new(0)).collect();
    let zipf = Zipfian::new(cfg.key_range, cfg.zipf_alpha);
    std::thread::scope(|s| {
        for (t, slot) in counts.iter().enumerate() {
            let stop = &stop;
            let zipf = &zipf;
            let map = &*map;
            let vf = &vf;
            s.spawn(move || {
                let mut rng = SplitMix64::new(
                    cfg.seed ^ (run_idx as u64) << 32 ^ ((t as u64 + 1) * 0x1234_5678),
                );
                let mut ops = 0u64;
                let mut check = 0u32;
                while {
                    check += 1;
                    // Poll the stop flag every 64 ops to keep it off the
                    // hot path.
                    !check.is_multiple_of(64) || !stop.load(Ordering::Relaxed)
                } {
                    let rank = zipf.next(&mut rng);
                    let key = if cfg.sparsify_keys {
                        sparsify(rank)
                    } else {
                        rank
                    };
                    let dice = rng.below(100) as u32;
                    if dice < cfg.update_percent {
                        if rmw {
                            // Update-heavy mix: in-place value replacement
                            // of (prefilled) present keys; absent keys are
                            // a measured no-op.
                            map.update(key, vf(rank));
                        } else if dice.is_multiple_of(2) {
                            // Updates split evenly between insert and delete.
                            map.insert(key, vf(rank));
                        } else {
                            map.remove(key);
                        }
                    } else {
                        std::hint::black_box(map.get(key));
                    }
                    ops += 1;
                }
                slot.store(ops, Ordering::Relaxed);
            });
        }
        // Timer thread: let the workers run, then stop them.
        std::thread::sleep(cfg.run_duration);
        stop.store(true, Ordering::SeqCst);
    });
    counts.into_iter().map(|c| c.into_inner()).collect()
}

/// Run the full experiment protocol on `map`: prefill, one warm-up run,
/// `cfg.repeats` timed runs; returns mean ± σ throughput. The paper's
/// `(u64, u64)` shape; see [`run_experiment_as`] for other value types.
pub fn run_experiment<M: Map<u64, u64> + ?Sized>(map: &M, cfg: &Config) -> Measurement {
    run_experiment_as(map, cfg, |v| v)
}

/// [`run_experiment`] generalized over the value type: `vf` maps the
/// workload's `u64` value stamps into the map's value domain (e.g. a fat
/// `Indirect<[u64; 4]>` constructor for the fat-value workload).
pub fn run_experiment_as<V: Value, M: Map<u64, V> + ?Sized>(
    map: &M,
    cfg: &Config,
    vf: impl Fn(u64) -> V + Sync,
) -> Measurement {
    run_protocol(map, cfg, vf, false)
}

/// [`run_experiment_as`] with the **update-heavy** mix: the
/// `update_percent` fraction of operations goes through native
/// [`Map::update`] (atomic in-place replacement) on the prefilled key set,
/// the rest are lookups. Paired with a forced-composite wrapper this
/// prices the atomic path against the remove+insert fallback.
pub fn run_update_experiment_as<V: Value, M: Map<u64, V> + ?Sized>(
    map: &M,
    cfg: &Config,
    vf: impl Fn(u64) -> V + Sync,
) -> Measurement {
    run_protocol(map, cfg, vf, true)
}

/// [`run_update_experiment_as`] at the paper's `(u64, u64)` shape.
pub fn run_update_experiment<M: Map<u64, u64> + ?Sized>(map: &M, cfg: &Config) -> Measurement {
    run_update_experiment_as(map, cfg, |v| v)
}

fn run_protocol<V: Value, M: Map<u64, V> + ?Sized>(
    map: &M,
    cfg: &Config,
    vf: impl Fn(u64) -> V + Sync,
    rmw: bool,
) -> Measurement {
    prefill(map, cfg, &vf);
    // Warm-up run (discarded), as in the paper.
    let _ = timed_run(map, cfg, 0, &vf, rmw);
    let mut mops = Vec::with_capacity(cfg.repeats);
    let mut total_ops = 0u64;
    let mut per_thread_ops = vec![0u64; cfg.threads];
    for r in 0..cfg.repeats {
        let t0 = Instant::now();
        let counts = timed_run(map, cfg, r + 1, &vf, rmw);
        let secs = t0.elapsed().as_secs_f64();
        let ops: u64 = counts.iter().sum();
        for (acc, c) in per_thread_ops.iter_mut().zip(&counts) {
            *acc += c;
        }
        total_ops += ops;
        mops.push(ops as f64 / secs / 1e6);
    }
    let mean = mops.iter().sum::<f64>() / mops.len() as f64;
    let var = if mops.len() > 1 {
        mops.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (mops.len() - 1) as f64
    } else {
        0.0
    };
    Measurement {
        name: map.name(),
        mops_mean: mean,
        mops_stddev: var.sqrt(),
        total_ops,
        per_thread_ops,
        config: cfg.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::sync::Mutex;

    /// A trivial reference map for driver tests.
    struct LockedMap {
        inner: Mutex<HashMap<u64, u64>>,
    }

    impl LockedMap {
        fn new() -> Self {
            Self {
                inner: Mutex::new(HashMap::new()),
            }
        }
    }

    impl Map<u64, u64> for LockedMap {
        fn insert(&self, key: u64, value: u64) -> bool {
            self.inner.lock().unwrap().insert(key, value).is_none()
        }
        fn remove(&self, key: u64) -> bool {
            self.inner.lock().unwrap().remove(&key).is_some()
        }
        fn get(&self, key: u64) -> Option<u64> {
            self.inner.lock().unwrap().get(&key).copied()
        }
        fn name(&self) -> &'static str {
            "locked_hashmap"
        }
    }

    #[test]
    fn experiment_runs_and_reports() {
        let map = LockedMap::new();
        let cfg = Config {
            threads: 2,
            key_range: 256,
            update_percent: 50,
            zipf_alpha: 0.75,
            run_duration: Duration::from_millis(30),
            repeats: 2,
            sparsify_keys: false,
            seed: 1,
        };
        let m = run_experiment(&map, &cfg);
        assert!(m.total_ops > 0);
        assert!(m.mops_mean > 0.0);
        assert_eq!(m.name, "locked_hashmap");
        let row = m.csv_row();
        assert!(row.starts_with("locked_hashmap,2,256,50,0.75,"));
    }

    #[test]
    fn prefill_half_the_range() {
        let map = LockedMap::new();
        let cfg = Config {
            key_range: 10_000,
            ..Config::default()
        };
        prefill(&map, &cfg, &|v| v);
        let n = map.inner.lock().unwrap().len() as f64;
        assert!((4_000.0..6_000.0).contains(&n), "prefill size {n}");
    }

    #[test]
    fn sparsified_prefill_uses_hashed_keys() {
        let map = LockedMap::new();
        let cfg = Config {
            key_range: 1_000,
            sparsify_keys: true,
            ..Config::default()
        };
        prefill(&map, &cfg, &|v| v);
        let inner = map.inner.lock().unwrap();
        // Hashed keys should leave the dense low range almost empty.
        let dense = inner.keys().filter(|&&k| k < 1_000).count();
        assert!(dense < 10, "{dense} dense keys under sparsify");
    }

    #[test]
    fn shuffle_allocator_smoke() {
        shuffle_allocator(10_000);
    }
}
