//! Zipfian key-rank generator (Gray et al. / YCSB formulation).
//!
//! Ranks are drawn from `[0, n)` with P(rank i) ∝ 1/(i+1)^α. α = 0 is the
//! uniform distribution; the paper evaluates α ∈ {0, 0.75, 0.9, 0.99}
//! (YCSB-style OLTP skew).
//!
//! The normalization constant ζ(n, α) is computed once per (n, α) pair and
//! cached process-wide — it is an O(n) float sum, noticeable for the
//! paper-scale 100M-key ranges.

use std::collections::HashMap;
use std::sync::Mutex;

use crate::rng::SplitMix64;

/// Zipfian rank generator over `[0, n)`.
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    alpha: f64,
    zetan: f64,
    theta_half_pow: f64,
    eta: f64,
    inv_one_minus_alpha: f64,
}

fn zeta(n: u64, alpha: f64) -> f64 {
    static CACHE: Mutex<Option<HashMap<(u64, u64), f64>>> = Mutex::new(None);
    let key = (n, alpha.to_bits());
    if let Some(cache) = CACHE.lock().unwrap_or_else(|e| e.into_inner()).as_ref()
        && let Some(&z) = cache.get(&key)
    {
        return z;
    }
    let mut sum = 0.0;
    for i in 1..=n {
        sum += 1.0 / (i as f64).powf(alpha);
    }
    CACHE
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .get_or_insert_with(HashMap::new)
        .insert(key, sum);
    sum
}

impl Zipfian {
    /// Generator for ranks in `[0, n)` with skew `alpha`.
    pub fn new(n: u64, alpha: f64) -> Self {
        assert!(n > 0);
        assert!((0.0..1.0).contains(&alpha), "alpha must be in [0, 1)");
        if alpha == 0.0 {
            return Self {
                n,
                alpha,
                zetan: 0.0,
                theta_half_pow: 0.0,
                eta: 0.0,
                inv_one_minus_alpha: 0.0,
            };
        }
        let zetan = zeta(n, alpha);
        let zeta2 = zeta(2.min(n), alpha);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - alpha)) / (1.0 - zeta2 / zetan);
        Self {
            n,
            alpha,
            zetan,
            theta_half_pow: 0.5f64.powf(alpha),
            eta,
            inv_one_minus_alpha: 1.0 / (1.0 - alpha),
        }
    }

    /// The range size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Draw a rank.
    #[inline]
    pub fn next(&self, rng: &mut SplitMix64) -> u64 {
        if self.alpha == 0.0 {
            return rng.below(self.n);
        }
        let u = rng.next_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + self.theta_half_pow {
            return 1;
        }
        let rank =
            (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.inv_one_minus_alpha)) as u64;
        rank.min(self.n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_alpha_zero() {
        let z = Zipfian::new(100, 0.0);
        let mut rng = SplitMix64::new(1);
        let mut counts = vec![0usize; 100];
        for _ in 0..100_000 {
            counts[z.next(&mut rng) as usize] += 1;
        }
        // Every key should appear near 1000 times.
        for &c in &counts {
            assert!((600..1500).contains(&c), "uniform bucket {c}");
        }
    }

    #[test]
    fn skew_concentrates_on_low_ranks() {
        let z = Zipfian::new(10_000, 0.99);
        let mut rng = SplitMix64::new(2);
        let mut head = 0usize;
        const DRAWS: usize = 100_000;
        for _ in 0..DRAWS {
            if z.next(&mut rng) < 100 {
                head += 1;
            }
        }
        // At alpha=.99, the top-1% of ranks take well over a third of mass.
        assert!(
            head > DRAWS / 3,
            "zipf(.99) head mass too small: {head}/{DRAWS}"
        );
    }

    #[test]
    fn moderate_skew_between_uniform_and_heavy() {
        let n = 10_000;
        let mut rng = SplitMix64::new(3);
        let mass_head = |alpha: f64, rng: &mut SplitMix64| {
            let z = Zipfian::new(n, alpha);
            let mut head = 0usize;
            for _ in 0..50_000 {
                if z.next(rng) < 100 {
                    head += 1;
                }
            }
            head
        };
        let uni = mass_head(0.0, &mut rng);
        let mid = mass_head(0.75, &mut rng);
        let high = mass_head(0.99, &mut rng);
        assert!(uni < mid && mid < high, "ordering: {uni} {mid} {high}");
    }

    #[test]
    fn ranks_in_range() {
        for alpha in [0.0, 0.75, 0.9, 0.99] {
            let z = Zipfian::new(1000, alpha);
            let mut rng = SplitMix64::new(4);
            for _ in 0..10_000 {
                assert!(z.next(&mut rng) < 1000);
            }
        }
    }

    #[test]
    fn zeta_cache_consistent() {
        let a = Zipfian::new(5000, 0.9);
        let b = Zipfian::new(5000, 0.9);
        assert_eq!(a.zetan.to_bits(), b.zetan.to_bits());
    }
}
