//! # flock-workload — YCSB-style benchmark driver
//!
//! Reproduces the paper's workload methodology (§8 "Workloads"):
//!
//! * a key range `[0, r)` prefilled with half the keys;
//! * each thread performs a mix of lookups and updates, with updates split
//!   evenly between inserts and deletes, keeping the size stable;
//! * keys drawn from a zipfian distribution with parameter α
//!   (α = 0 is uniform; 0.75/0.9/0.99 skew toward hot keys, as in YCSB);
//! * timed runs with a warm-up run discarded and the mean ± σ of the
//!   remaining runs reported;
//! * oversubscription simply by requesting more threads than cores.
//!
//! The driver is generic over [`BenchMap`]; adapters in `flock-bench` hook
//! up both the Flock structures and the baselines.

#![warn(missing_docs)]

pub mod driver;
pub mod rng;
pub mod zipf;

pub use driver::{run_experiment, shuffle_allocator, Config, Measurement};
pub use rng::SplitMix64;
pub use zipf::Zipfian;

/// Minimal map interface the driver needs.
pub trait BenchMap: Send + Sync {
    /// Insert; `false` if present.
    fn insert(&self, key: u64, value: u64) -> bool;
    /// Remove; `false` if absent.
    fn remove(&self, key: u64) -> bool;
    /// Lookup.
    fn get(&self, key: u64) -> Option<u64>;
    /// Display name for reports.
    fn name(&self) -> &'static str;
}

/// splitmix64 finalizer; used to sparsify keys (the paper hashes keys for
/// the ART benchmark so the trie does not benefit from dense packing).
#[inline]
pub fn sparsify(key: u64) -> u64 {
    let mut x = key;
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}
