//! # flock-workload — YCSB-style benchmark driver
//!
//! Reproduces the paper's workload methodology (§8 "Workloads"):
//!
//! * a key range `[0, r)` prefilled with half the keys;
//! * each thread performs a mix of lookups and updates, with updates split
//!   evenly between inserts and deletes, keeping the size stable;
//! * keys drawn from a zipfian distribution with parameter α
//!   (α = 0 is uniform; 0.75/0.9/0.99 skew toward hot keys, as in YCSB);
//! * timed runs with a warm-up run discarded and the mean ± σ of the
//!   remaining runs reported;
//! * oversubscription simply by requesting more threads than cores.
//!
//! The driver runs anything implementing [`flock_api::Map`] — the one map
//! interface of the workspace — so the Flock structures and the baselines
//! plug in directly, with no adapter layer.

#![warn(missing_docs)]

pub mod driver;
pub mod rng;
pub mod zipf;

pub use driver::{
    Config, Measurement, run_experiment, run_experiment_as, run_update_experiment,
    run_update_experiment_as, shuffle_allocator,
};
pub use flock_api::Map;
pub use rng::SplitMix64;
pub use zipf::Zipfian;

/// splitmix64 finalizer; used to sparsify keys (the paper hashes keys for
/// the ART benchmark so the trie does not benefit from dense packing).
#[inline]
pub fn sparsify(key: u64) -> u64 {
    let mut x = key;
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}
