//! Natarajan–Mittal-style lock-free external BST (edge flagging/tagging).
//! Generic over `(K, V)`.
//!
//! Follows the design of "Fast Concurrent Lock-Free Binary Search Trees"
//! (PPoPP 2014): an external BST where *edges* (child pointers) carry two
//! low bits —
//!
//! * **FLAG**: set on the edge to a leaf whose deletion has been *injected*
//!   (the delete's linearization point);
//! * **TAG**: set on the sibling edge to freeze it while the leaf's parent
//!   is spliced out, so a racing insert below the sibling cannot be lost.
//!
//! One deviation, documented in DESIGN.md §4: traversals help *eagerly* —
//! a search that steps over a flagged or tagged edge first completes that
//! pending deletion and restarts. This keeps the tag chains of the original
//! at length one, which makes memory reclamation exact (the thread whose
//! CAS detaches a parent retires exactly that parent and its flagged leaf)
//! while preserving lock-freedom: every failed step completes someone's
//! operation.

use std::sync::atomic::{AtomicUsize, Ordering};

use flock_sync::ApproxLen;

use flock_api::{Key, Map, Value};

use crate::value_cell::ValueCell;

const FLAG: usize = 1;
const TAG: usize = 2;
const BITS: usize = FLAG | TAG;

#[inline]
fn ptr_of<K, V: Value>(w: usize) -> *mut Node<K, V> {
    (w & !BITS) as *mut Node<K, V>
}

#[inline]
fn flagged(w: usize) -> bool {
    w & FLAG != 0
}

#[inline]
fn tagged(w: usize) -> bool {
    w & TAG != 0
}

/// Key classes order sentinels above every finite key:
/// `Finite(_) < Inf0 < Inf1 < Inf2` (derived `Ord`, declaration order).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord)]
enum KeyClass<K> {
    Finite(K),
    Inf0,
    Inf1,
    Inf2,
}

struct Node<K, V: Value> {
    key: KeyClass<K>,
    /// Atomic value cell (`None` on sentinel leaves and internals): swap-
    /// replaced in place by the native `update`, snapshot-read by `get`.
    value: Option<ValueCell<V>>,
    /// Child edges (internals only).
    left: AtomicUsize,
    right: AtomicUsize,
    is_leaf: bool,
}

impl<K: Key, V: Value> Node<K, V> {
    fn leaf(key: KeyClass<K>, value: Option<V>) -> Self {
        Self {
            key,
            value: value.map(ValueCell::new),
            left: AtomicUsize::new(0),
            right: AtomicUsize::new(0),
            is_leaf: true,
        }
    }

    fn internal(key: KeyClass<K>, left: *mut Node<K, V>, right: *mut Node<K, V>) -> Self {
        Self {
            key,
            value: None,
            left: AtomicUsize::new(left as usize),
            right: AtomicUsize::new(right as usize),
            is_leaf: false,
        }
    }

    /// The edge to follow for `k`, and its sibling.
    #[inline]
    fn edges_for(&self, k: &KeyClass<K>) -> (&AtomicUsize, &AtomicUsize) {
        if k < &self.key {
            (&self.left, &self.right)
        } else {
            (&self.right, &self.left)
        }
    }
}

/// Lock-free external BST map (Natarajan–Mittal style).
pub struct NatarajanBst<K: Key, V: Value> {
    /// Maintained element count backing `len_approx`.
    len: ApproxLen,
    /// Root sentinel structure: R(INF2) → { S(INF1) → {leaf INF0, leaf INF1},
    /// leaf INF2 }. All finite keys live under S.
    root: *mut Node<K, V>,
}

// SAFETY: CAS-based mutation; epoch reclamation.
unsafe impl<K: Key, V: Value> Send for NatarajanBst<K, V> {}
unsafe impl<K: Key, V: Value> Sync for NatarajanBst<K, V> {}

impl<K: Key, V: Value> Default for NatarajanBst<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

/// Result of a descent: the last two internals and the leaf, plus the edge
/// word through which the leaf was reached.
struct Seek<K, V: Value> {
    gparent: *mut Node<K, V>,
    parent: *mut Node<K, V>,
    leaf: *mut Node<K, V>,
    leaf_edge_word: usize,
}

impl<K: Key, V: Value> NatarajanBst<K, V> {
    /// An empty tree.
    pub fn new() -> Self {
        let l0 = flock_epoch::alloc(Node::leaf(KeyClass::Inf0, None));
        let l1 = flock_epoch::alloc(Node::leaf(KeyClass::Inf1, None));
        let l2 = flock_epoch::alloc(Node::leaf(KeyClass::Inf2, None));
        let s = flock_epoch::alloc(Node::internal(KeyClass::Inf1, l0, l1));
        let r = flock_epoch::alloc(Node::internal(KeyClass::Inf2, s, l2));
        Self {
            root: r,
            len: ApproxLen::new(),
        }
    }

    /// Complete a pending deletion: `parent`'s `victim_side` edge is flagged
    /// (a leaf is being deleted). Freeze the sibling edge, switch
    /// `gparent`'s edge from `parent` to the sibling, and retire the
    /// detached pair if we won.
    ///
    /// `gp_edge` is the edge of `gparent` that currently points (cleanly) to
    /// `parent`.
    fn help_delete(
        &self,
        gp_edge: &AtomicUsize,
        parent: *mut Node<K, V>,
        victim_is_left: bool,
    ) -> bool {
        // SAFETY: caller pinned; parent reached through a live edge.
        let p = unsafe { &*parent };
        let (victim_edge, sibling_edge) = if victim_is_left {
            (&p.left, &p.right)
        } else {
            (&p.right, &p.left)
        };
        let vw = victim_edge.load(Ordering::SeqCst);
        if !flagged(vw) {
            return false; // stale request
        }
        // Freeze the sibling edge so a concurrent insert below it either
        // lands before the splice or fails.
        let sw = sibling_edge.fetch_or(TAG, Ordering::SeqCst) | TAG;
        // Splice: gparent's edge switches from (parent, clean) to the
        // sibling pointer, dropping TAG but preserving the sibling's FLAG.
        let new_word = sw & !TAG;
        if gp_edge
            .compare_exchange(
                parent as usize,
                new_word,
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_ok()
        {
            // We detached parent and the flagged leaf: unique owner.
            // SAFETY: both unreachable now; retired once by the CAS winner.
            unsafe {
                flock_epoch::retire(parent);
                flock_epoch::retire(ptr_of::<K, V>(vw));
            }
            true
        } else {
            false
        }
    }

    /// Descend to the leaf for `k`, eagerly helping any flagged or tagged
    /// edge encountered (then restarting).
    fn seek(&self, k: &KeyClass<K>) -> Seek<K, V> {
        'restart: loop {
            let mut gparent = std::ptr::null_mut();
            let mut parent = self.root;
            // Edge of `gparent` that points to `parent` (none for root).
            let mut parent_edge: Option<&AtomicUsize> = None;
            loop {
                // SAFETY: pinned descent; nodes epoch-reclaimed.
                let p = unsafe { &*parent };
                let (edge, _) = p.edges_for(k);
                let w = edge.load(Ordering::SeqCst);
                let child = ptr_of::<K, V>(w);
                // SAFETY: as above.
                let c = unsafe { &*child };
                if c.is_leaf {
                    if (flagged(w) || tagged(w))
                        && let Some(pe) = parent_edge
                    {
                        // A deletion is pending right here; finish it first
                        // unless we are at the root sentinel level. If this
                        // edge is flagged, its leaf is the victim; if only
                        // tagged, the victim is on the other side.
                        let vil = if flagged(w) {
                            std::ptr::eq(edge, &p.left)
                        } else {
                            !std::ptr::eq(edge, &p.left)
                        };
                        self.help_delete(pe, parent, vil);
                        continue 'restart;
                    }
                    return Seek {
                        gparent,
                        parent,
                        leaf: child,
                        leaf_edge_word: w,
                    };
                }
                // Internal child: a tagged edge to an internal node means
                // `parent` is mid-splice — help and restart.
                if tagged(w)
                    && let Some(pe) = parent_edge
                {
                    let vil = !std::ptr::eq(edge, &p.left);
                    self.help_delete(pe, parent, vil);
                    continue 'restart;
                }
                gparent = parent;
                parent = child;
                parent_edge = Some(edge);
            }
        }
    }

    /// Insert; `false` if present.
    pub fn insert(&self, k: K, v: V) -> bool {
        let ok = self.insert_impl(k, v);
        if ok {
            self.len.inc();
        }
        ok
    }

    fn insert_impl(&self, k: K, v: V) -> bool {
        let kc = KeyClass::Finite(k);
        let _g = flock_epoch::pin();
        loop {
            let s = self.seek(&kc);
            // SAFETY: pinned.
            let leaf = unsafe { &*s.leaf };
            if leaf.key == kc {
                return false;
            }
            // SAFETY: pinned.
            let p = unsafe { &*s.parent };
            let (edge, _) = p.edges_for(&kc);
            if flagged(s.leaf_edge_word) || tagged(s.leaf_edge_word) {
                continue; // seek will help next round
            }
            // Build internal(two leaves) routing on the larger key.
            let leaf_key = leaf.key.clone();
            let new_leaf = flock_epoch::alloc(Node::leaf(kc.clone(), Some(v.clone())));
            let new_internal = if kc < leaf_key {
                flock_epoch::alloc(Node::internal(leaf_key, new_leaf, s.leaf))
            } else {
                flock_epoch::alloc(Node::internal(kc.clone(), s.leaf, new_leaf))
            };
            if edge
                .compare_exchange(
                    s.leaf as usize,
                    new_internal as usize,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_ok()
            {
                return true;
            }
            // SAFETY: never published.
            unsafe {
                flock_epoch::free_now(new_internal);
                flock_epoch::free_now(new_leaf);
            }
        }
    }

    /// Remove; `false` if absent. Linearizes at the FLAG injection.
    pub fn remove(&self, k: K) -> bool {
        let ok = self.remove_impl(k);
        if ok {
            self.len.dec();
        }
        ok
    }

    fn remove_impl(&self, k: K) -> bool {
        let kc = KeyClass::Finite(k);
        let _g = flock_epoch::pin();
        loop {
            let s = self.seek(&kc);
            // SAFETY: pinned.
            let leaf = unsafe { &*s.leaf };
            if leaf.key != kc {
                return false;
            }
            // SAFETY: pinned.
            let p = unsafe { &*s.parent };
            let (edge, _) = p.edges_for(&kc);
            // Injection: flag the edge to the victim leaf.
            if edge
                .compare_exchange(
                    s.leaf as usize,
                    s.leaf as usize | FLAG,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_ok()
            {
                // Cleanup: splice parent + leaf out under the grandparent.
                if !s.gparent.is_null() {
                    // SAFETY: pinned.
                    let g = unsafe { &*s.gparent };
                    let (gp_edge, _) = g.edges_for(&kc);
                    let vil = std::ptr::eq(edge, &p.left);
                    if !self.help_delete(gp_edge, s.parent, vil) {
                        // Someone else finished the splice for us (or the
                        // neighborhood changed); a later seek cleans up.
                        // Drive it to completion so the flag never blocks.
                        loop {
                            let s2 = self.seek(&kc);
                            if s2.leaf != s.leaf {
                                break;
                            }
                        }
                    }
                }
                return true;
            }
            // Injection failed: either the leaf is being deleted by someone
            // else (flag), frozen (tag), or replaced. Re-seek and retry;
            // seek helps pending deletions.
        }
    }

    /// Read-only descent to the leaf covering `kc`: `(leaf, edge_word)`,
    /// where the edge word carries the deletion flag. Caller must be
    /// pinned. Shared by `get` and `update` so the FLAG semantics of the
    /// two can never diverge.
    fn descend(&self, kc: &KeyClass<K>) -> (*mut Node<K, V>, usize) {
        let mut cur = self.root;
        loop {
            // SAFETY: pinned descent per caller.
            let n = unsafe { &*cur };
            let (edge, _) = n.edges_for(kc);
            let w = edge.load(Ordering::SeqCst);
            let child = ptr_of::<K, V>(w);
            // SAFETY: pinned.
            if unsafe { &*child }.is_leaf {
                return (child, w);
            }
            cur = child;
        }
    }

    /// Lookup; absent if the leaf's edge carries a deletion flag.
    pub fn get(&self, k: K) -> Option<V> {
        let kc = KeyClass::Finite(k);
        let _g = flock_epoch::pin();
        let (leaf, w) = self.descend(&kc);
        // SAFETY: pinned.
        let c = unsafe { &*leaf };
        if c.key == kc && !flagged(w) {
            c.value.as_ref().map(ValueCell::load)
        } else {
            None
        }
    }

    /// Presence-only lookup: the same descent as [`NatarajanBst::get`]
    /// without decoding the value cell.
    pub fn contains(&self, k: K) -> bool {
        let kc = KeyClass::Finite(k);
        let _g = flock_epoch::pin();
        let (leaf, w) = self.descend(&kc);
        // SAFETY: pinned.
        unsafe { &*leaf }.key == kc && !flagged(w)
    }

    /// Native atomic update: one atomic swap of the leaf's value cell.
    /// Returns `false` (storing nothing) if `k` is absent.
    ///
    /// A key's leaf node is pointer-stable for the key's lifetime (inserts
    /// reuse the existing leaf when building the new internal), so the swap
    /// hits the one cell every reader of this key decodes. Linearizes at
    /// the swap when the leaf's edge is still unflagged there, and
    /// immediately before the concurrent remove's flag otherwise (the value
    /// written into an already-flagged leaf is unobservable, matching
    /// update-then-remove).
    pub fn update(&self, k: K, v: V) -> bool {
        let kc = KeyClass::Finite(k);
        let _g = flock_epoch::pin();
        let (leaf, w) = self.descend(&kc);
        // SAFETY: pinned.
        let c = unsafe { &*leaf };
        if c.key == kc && !flagged(w) {
            c.value
                .as_ref()
                .expect("finite-key leaf has a value cell")
                .replace(v);
            true
        } else {
            false
        }
    }

    /// Element count (O(n); tests/diagnostics).
    pub fn len(&self) -> usize {
        let _g = flock_epoch::pin();
        // SAFETY: pinned walk.
        unsafe { Self::count(self.root) }
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    unsafe fn count(n: *mut Node<K, V>) -> usize {
        // SAFETY: pinned per caller.
        let node = unsafe { &*n };
        if node.is_leaf {
            return matches!(node.key, KeyClass::Finite(_)) as usize;
        }
        let lw = node.left.load(Ordering::SeqCst);
        let rw = node.right.load(Ordering::SeqCst);
        let mut total = 0;
        if !flagged(lw) {
            total += unsafe { Self::count(ptr_of::<K, V>(lw)) };
        }
        if !flagged(rw) {
            total += unsafe { Self::count(ptr_of::<K, V>(rw)) };
        }
        total
    }
}

impl<K: Key, V: Value> Drop for NatarajanBst<K, V> {
    fn drop(&mut self) {
        // SAFETY: exclusive access; flagged leaves still linked are freed
        // here exactly once; already-detached nodes belong to the collector.
        unsafe fn free<K: Key, V: Value>(n: *mut Node<K, V>) {
            // SAFETY: exclusive teardown.
            unsafe {
                if !(*n).is_leaf {
                    free(ptr_of::<K, V>((*n).left.load(Ordering::SeqCst)));
                    free(ptr_of::<K, V>((*n).right.load(Ordering::SeqCst)));
                }
                flock_epoch::free_now(n);
            }
        }
        // SAFETY: exclusive access.
        unsafe { free(self.root) };
    }
}

impl<K: Key, V: Value> Map<K, V> for NatarajanBst<K, V> {
    fn insert(&self, key: K, value: V) -> bool {
        NatarajanBst::insert(self, key, value)
    }
    fn remove(&self, key: K) -> bool {
        NatarajanBst::remove(self, key)
    }
    fn get(&self, key: K) -> Option<V> {
        NatarajanBst::get(self, key)
    }
    fn contains(&self, key: K) -> bool {
        NatarajanBst::contains(self, key)
    }
    fn name(&self) -> &'static str {
        "natarajan"
    }
    fn update(&self, key: K, value: V) -> bool {
        NatarajanBst::update(self, key, value)
    }
    fn has_atomic_update(&self) -> bool {
        true
    }
    fn len_approx(&self) -> Option<usize> {
        Some(self.len.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flock_api::testing as testutil;

    #[test]
    fn basic_ops() {
        let t: NatarajanBst<u64, u64> = NatarajanBst::new();
        assert!(t.is_empty());
        assert!(t.insert(5, 50));
        assert!(!t.insert(5, 51));
        assert!(t.insert(3, 30));
        assert!(t.insert(8, 80));
        assert_eq!(t.get(5), Some(50));
        assert!(t.remove(5));
        assert!(!t.remove(5));
        assert_eq!(t.get(5), None);
        assert_eq!(t.get(3), Some(30));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn sequential_fill_and_drain() {
        let t: NatarajanBst<u64, u64> = NatarajanBst::new();
        for k in 0..1_000 {
            assert!(t.insert(k, k * 2));
        }
        assert_eq!(t.len(), 1_000);
        for k in 0..1_000 {
            assert_eq!(t.get(k), Some(k * 2));
            assert!(t.remove(k));
        }
        assert!(t.is_empty());
    }

    #[test]
    fn oracle() {
        let t: NatarajanBst<u64, u64> = NatarajanBst::new();
        testutil::oracle_check(&t, 4_000, 256, 31);
    }

    #[test]
    fn concurrent_partitioned() {
        let t: NatarajanBst<u64, u64> = NatarajanBst::new();
        testutil::partition_stress(&t, 4, 1_500);
    }

    #[test]
    fn concurrent_same_keys_contention() {
        // All threads fight over a tiny key space: exercises the
        // flag/tag/help paths heavily. Invariant: ops never crash and the
        // final state is a subset of the key space with coherent gets.
        let t: NatarajanBst<u64, u64> = NatarajanBst::new();
        std::thread::scope(|s| {
            for tid in 0..4u64 {
                let t = &t;
                s.spawn(move || {
                    let mut state = tid + 1;
                    for _ in 0..4_000 {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        let k = state % 8;
                        if state % 2 == 0 {
                            t.insert(k, k);
                        } else {
                            t.remove(k);
                        }
                    }
                });
            }
        });
        for k in 0..8 {
            if let Some(v) = t.get(k) {
                assert_eq!(v, k);
            }
        }
        assert!(t.len() <= 8);
    }
}
