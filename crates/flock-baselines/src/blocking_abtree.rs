//! Srivastava-style *blocking* optimistic (a,b)-tree — the paper's
//! `srivastava_abtree` comparator (Figure 6). Generic over `(K, V)`.
//!
//! Same structural rules as `flock_ds::abtree` (immutable key arrays,
//! in-place child cells, copy-on-write node replacement, preemptive splits,
//! relaxed deletes) but with raw test-and-test-and-set spin locks instead of
//! Flock locks: no descriptors, no logging, no helping. This is the
//! independent blocking implementation the paper compares its `abtree`
//! against — sharing the node layout deliberately isolates the variable
//! under test (the locking mechanism).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use flock_sync::{ApproxLen, TtasLock};

use flock_api::{Key, Map, Value};

/// Maximum keys per node.
pub const B: usize = 12;

struct Node<K, V> {
    lock: TtasLock,
    removed: AtomicBool,
    is_leaf: bool,
    /// Leaf: element keys. Internal: separators (children = len + 1).
    keys: Vec<K>,
    /// Element values (leaves only).
    vals: Vec<V>,
    children: [AtomicUsize; B + 1],
}

impl<K: Key, V: Value> Node<K, V> {
    fn empty_children() -> [AtomicUsize; B + 1] {
        std::array::from_fn(|_| AtomicUsize::new(0))
    }

    fn leaf(entries: &[(K, V)]) -> Self {
        debug_assert!(entries.len() <= B);
        Self {
            lock: TtasLock::new(),
            removed: AtomicBool::new(false),
            is_leaf: true,
            keys: entries.iter().map(|(k, _)| k.clone()).collect(),
            vals: entries.iter().map(|(_, v)| v.clone()).collect(),
            children: Self::empty_children(),
        }
    }

    fn internal(seps: &[K], kids: &[*mut Node<K, V>]) -> Self {
        debug_assert_eq!(kids.len(), seps.len() + 1);
        let children = std::array::from_fn(|i| {
            AtomicUsize::new(if i < kids.len() { kids[i] as usize } else { 0 })
        });
        Self {
            lock: TtasLock::new(),
            removed: AtomicBool::new(false),
            is_leaf: false,
            keys: seps.to_vec(),
            vals: Vec::new(),
            children,
        }
    }

    #[inline]
    fn route(&self, k: &K) -> usize {
        self.keys.partition_point(|s| s <= k)
    }

    #[inline]
    fn find(&self, k: &K) -> Option<usize> {
        self.keys.iter().position(|x| x == k)
    }

    fn leaf_entries(&self) -> Vec<(K, V)> {
        self.keys
            .iter()
            .cloned()
            .zip(self.vals.iter().cloned())
            .collect()
    }

    fn separators(&self) -> Vec<K> {
        self.keys.clone()
    }

    fn child_ptrs(&self) -> Vec<*mut Node<K, V>> {
        (0..=self.keys.len())
            .map(|i| self.children[i].load(Ordering::SeqCst) as *mut Node<K, V>)
            .collect()
    }

    #[inline]
    fn is_full(&self) -> bool {
        self.keys.len() == B
    }
}

/// Blocking optimistic (a,b)-tree map.
pub struct BlockingABTree<K: Key, V: Value> {
    /// Maintained element count backing `len_approx`.
    len: ApproxLen,
    anchor: *mut Node<K, V>,
}

// SAFETY: spin locks guard mutation; epoch reclamation.
unsafe impl<K: Key, V: Value> Send for BlockingABTree<K, V> {}
unsafe impl<K: Key, V: Value> Sync for BlockingABTree<K, V> {}

impl<K: Key, V: Value> Default for BlockingABTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Key, V: Value> BlockingABTree<K, V> {
    /// An empty tree.
    pub fn new() -> Self {
        let root = flock_epoch::alloc(Node::leaf(&[]));
        let anchor = flock_epoch::alloc(Node::internal(&[], &[root]));
        Self {
            anchor,
            len: ApproxLen::new(),
        }
    }

    fn path_to(&self, k: &K) -> Vec<*mut Node<K, V>> {
        let mut path = vec![self.anchor];
        // SAFETY: caller pinned.
        let mut cur =
            unsafe { (*self.anchor).children[0].load(Ordering::SeqCst) } as *mut Node<K, V>;
        loop {
            path.push(cur);
            // SAFETY: pinned.
            let n = unsafe { &*cur };
            if n.is_leaf {
                return path;
            }
            cur = n.children[n.route(k)].load(Ordering::SeqCst) as *mut Node<K, V>;
        }
    }

    /// Split full root under the anchor lock. Returns success.
    fn split_root(&self, root: *mut Node<K, V>) -> bool {
        // SAFETY: pinned caller.
        let a = unsafe { &*self.anchor };
        let r = unsafe { &*root };
        a.lock.acquire();
        r.lock.acquire();
        let ok = a.children[0].load(Ordering::SeqCst) == root as usize
            && r.is_full()
            && !r.removed.load(Ordering::SeqCst);
        if ok {
            let mid = r.keys.len() / 2;
            let (sep, left_ptr, right_ptr);
            if r.is_leaf {
                let e = r.leaf_entries();
                sep = e[mid].0.clone();
                left_ptr = flock_epoch::alloc(Node::leaf(&e[..mid]));
                right_ptr = flock_epoch::alloc(Node::leaf(&e[mid..]));
            } else {
                let seps = r.separators();
                let kids = r.child_ptrs();
                sep = seps[mid].clone();
                left_ptr = flock_epoch::alloc(Node::internal(&seps[..mid], &kids[..=mid]));
                right_ptr = flock_epoch::alloc(Node::internal(&seps[mid + 1..], &kids[mid + 1..]));
            }
            let new_root = flock_epoch::alloc(Node::internal(&[sep], &[left_ptr, right_ptr]));
            r.removed.store(true, Ordering::SeqCst);
            a.children[0].store(new_root as usize, Ordering::SeqCst);
            // SAFETY: replaced above; unique retire under the locks.
            unsafe { flock_epoch::retire(root) };
        }
        r.lock.release();
        a.lock.release();
        ok
    }

    /// Split full child `c` of `p` under `g`; returns success.
    fn split_child(
        &self,
        g: *mut Node<K, V>,
        p: *mut Node<K, V>,
        c: *mut Node<K, V>,
        k: &K,
    ) -> bool {
        // SAFETY: pinned caller.
        let (g, p, c) = unsafe { (&*g, &*p, &*c) };
        g.lock.acquire();
        p.lock.acquire();
        c.lock.acquire();
        let gi = g.route(k);
        let pi = p.route(k);
        let ok = !g.removed.load(Ordering::SeqCst)
            && !p.removed.load(Ordering::SeqCst)
            && !c.removed.load(Ordering::SeqCst)
            && c.is_full()
            && !p.is_full()
            && g.children[gi].load(Ordering::SeqCst) == p as *const Node<K, V> as usize
            && p.children[pi].load(Ordering::SeqCst) == c as *const Node<K, V> as usize;
        if ok {
            let mid = c.keys.len() / 2;
            let (sep, left_ptr, right_ptr);
            if c.is_leaf {
                let e = c.leaf_entries();
                sep = e[mid].0.clone();
                left_ptr = flock_epoch::alloc(Node::leaf(&e[..mid]));
                right_ptr = flock_epoch::alloc(Node::leaf(&e[mid..]));
            } else {
                let seps = c.separators();
                let kids = c.child_ptrs();
                sep = seps[mid].clone();
                left_ptr = flock_epoch::alloc(Node::internal(&seps[..mid], &kids[..=mid]));
                right_ptr = flock_epoch::alloc(Node::internal(&seps[mid + 1..], &kids[mid + 1..]));
            }
            let mut nseps = p.separators();
            let mut nkids = p.child_ptrs();
            nseps.insert(pi, sep);
            nkids[pi] = left_ptr;
            nkids.insert(pi + 1, right_ptr);
            let new_p = flock_epoch::alloc(Node::internal(&nseps, &nkids));
            p.removed.store(true, Ordering::SeqCst);
            c.removed.store(true, Ordering::SeqCst);
            g.children[gi].store(new_p as usize, Ordering::SeqCst);
            // SAFETY: both replaced; unique retires under the locks.
            unsafe {
                flock_epoch::retire(p as *const Node<K, V> as *mut Node<K, V>);
                flock_epoch::retire(c as *const Node<K, V> as *mut Node<K, V>);
            }
        }
        c.lock.release();
        p.lock.release();
        g.lock.release();
        ok
    }

    /// Insert; `false` if present.
    pub fn insert(&self, k: K, v: V) -> bool {
        let ok = self.insert_impl(k, v);
        if ok {
            self.len.inc();
        }
        ok
    }

    fn insert_impl(&self, k: K, v: V) -> bool {
        let _g = flock_epoch::pin();
        'restart: loop {
            let path = self.path_to(&k);
            let leaf = *path.last().expect("leaf");
            // SAFETY: pinned.
            if unsafe { &*leaf }.find(&k).is_some() {
                return false;
            }
            // SAFETY: pinned.
            if unsafe { &*path[1] }.is_full() {
                self.split_root(path[1]);
                continue 'restart;
            }
            for w in 2..path.len() {
                // SAFETY: pinned.
                if unsafe { &*path[w] }.is_full() {
                    self.split_child(path[w - 2], path[w - 1], path[w], &k);
                    continue 'restart;
                }
            }
            let parent = path[path.len() - 2];
            // SAFETY: pinned.
            let p = unsafe { &*parent };
            p.lock.acquire();
            let slot = p.route(&k);
            let l = unsafe { &*leaf };
            let ok = !p.removed.load(Ordering::SeqCst)
                && p.children[slot].load(Ordering::SeqCst) == leaf as usize
                && l.find(&k).is_none()
                && !l.is_full();
            if ok {
                let mut entries = l.leaf_entries();
                let pos = entries.partition_point(|(ek, _)| ek < &k);
                entries.insert(pos, (k.clone(), v.clone()));
                let newl = flock_epoch::alloc(Node::leaf(&entries));
                p.children[slot].store(newl as usize, Ordering::SeqCst);
                // SAFETY: replaced above; unique retire under the lock.
                unsafe { flock_epoch::retire(leaf) };
            }
            p.lock.release();
            if ok {
                return true;
            }
            // Re-check for presence before retrying.
            let path2 = self.path_to(&k);
            // SAFETY: pinned.
            if unsafe { &**path2.last().expect("leaf") }.find(&k).is_some() {
                return false;
            }
        }
    }

    /// Native atomic update: copy-on-write replace the leaf with the value
    /// changed, under the parent's lock — the single atomic child-pointer
    /// store means readers see the old batch or the new one, never absence
    /// or a third value. Returns `false` (storing nothing) if `k` is
    /// absent.
    pub fn update(&self, k: K, v: V) -> bool {
        let _g = flock_epoch::pin();
        loop {
            let path = self.path_to(&k);
            let leaf = *path.last().expect("leaf");
            // SAFETY: pinned.
            let l = unsafe { &*leaf };
            if l.find(&k).is_none() {
                return false;
            }
            let parent = path[path.len() - 2];
            // SAFETY: pinned.
            let p = unsafe { &*parent };
            p.lock.acquire();
            let slot = p.route(&k);
            let pos = if !p.removed.load(Ordering::SeqCst)
                && p.children[slot].load(Ordering::SeqCst) == leaf as usize
            {
                l.find(&k)
            } else {
                None
            };
            if let Some(pos) = pos {
                let mut entries = l.leaf_entries();
                entries[pos].1 = v.clone();
                let newl = flock_epoch::alloc(Node::leaf(&entries));
                p.children[slot].store(newl as usize, Ordering::SeqCst);
                // SAFETY: replaced above; unique retire under the lock.
                unsafe { flock_epoch::retire(leaf) };
            }
            p.lock.release();
            if pos.is_some() {
                return true;
            }
        }
    }

    /// Remove; `false` if absent.
    pub fn remove(&self, k: K) -> bool {
        let ok = self.remove_impl(&k);
        if ok {
            self.len.dec();
        }
        ok
    }

    fn remove_impl(&self, k: &K) -> bool {
        let _g = flock_epoch::pin();
        loop {
            let path = self.path_to(k);
            let leaf = *path.last().expect("leaf");
            // SAFETY: pinned.
            let l = unsafe { &*leaf };
            if l.find(k).is_none() {
                return false;
            }
            let parent = path[path.len() - 2];
            // SAFETY: pinned.
            let p = unsafe { &*parent };
            if l.keys.len() > 1 || p.keys.is_empty() {
                p.lock.acquire();
                let slot = p.route(k);
                let ok = !p.removed.load(Ordering::SeqCst)
                    && p.children[slot].load(Ordering::SeqCst) == leaf as usize
                    && l.find(k).is_some();
                if ok {
                    let mut entries = l.leaf_entries();
                    entries.remove(l.find(k).expect("validated"));
                    let newl = flock_epoch::alloc(Node::leaf(&entries));
                    p.children[slot].store(newl as usize, Ordering::SeqCst);
                    // SAFETY: replaced above; unique retire under the lock.
                    unsafe { flock_epoch::retire(leaf) };
                }
                p.lock.release();
                if ok {
                    return true;
                }
            } else {
                let g = path[path.len() - 3];
                // SAFETY: pinned.
                let g = unsafe { &*g };
                g.lock.acquire();
                p.lock.acquire();
                let gi = g.route(k);
                let pi = p.route(k);
                let ok = !g.removed.load(Ordering::SeqCst)
                    && !p.removed.load(Ordering::SeqCst)
                    && g.children[gi].load(Ordering::SeqCst) == parent as usize
                    && p.children[pi].load(Ordering::SeqCst) == leaf as usize
                    && l.keys.len() == 1
                    && l.find(k).is_some();
                if ok {
                    let mut seps = p.separators();
                    let mut kids = p.child_ptrs();
                    kids.remove(pi);
                    seps.remove(if pi == 0 { 0 } else { pi - 1 });
                    let replacement = if seps.is_empty() {
                        kids[0] as usize
                    } else {
                        flock_epoch::alloc(Node::internal(&seps, &kids)) as usize
                    };
                    p.removed.store(true, Ordering::SeqCst);
                    g.children[gi].store(replacement, Ordering::SeqCst);
                    // SAFETY: both unlinked; unique retires under the locks.
                    unsafe {
                        flock_epoch::retire(parent);
                        flock_epoch::retire(leaf);
                    }
                }
                p.lock.release();
                g.lock.release();
                if ok {
                    return true;
                }
            }
        }
    }

    /// Wait-free lookup.
    pub fn get(&self, k: K) -> Option<V> {
        let _g = flock_epoch::pin();
        // SAFETY: pinned descent.
        let mut cur =
            unsafe { (*self.anchor).children[0].load(Ordering::SeqCst) } as *mut Node<K, V>;
        loop {
            // SAFETY: pinned.
            let n = unsafe { &*cur };
            if n.is_leaf {
                return n.find(&k).map(|i| n.vals[i].clone());
            }
            cur = n.children[n.route(&k)].load(Ordering::SeqCst) as *mut Node<K, V>;
        }
    }

    /// Presence-only lookup: the same descent as [`BlockingABTree::get`]
    /// without cloning the value.
    pub fn contains(&self, k: &K) -> bool {
        let _g = flock_epoch::pin();
        // SAFETY: pinned descent.
        let mut cur =
            unsafe { (*self.anchor).children[0].load(Ordering::SeqCst) } as *mut Node<K, V>;
        loop {
            // SAFETY: pinned.
            let n = unsafe { &*cur };
            if n.is_leaf {
                return n.find(k).is_some();
            }
            cur = n.children[n.route(k)].load(Ordering::SeqCst) as *mut Node<K, V>;
        }
    }

    /// Element count (O(n)).
    pub fn len(&self) -> usize {
        let _g = flock_epoch::pin();
        // SAFETY: pinned walk.
        unsafe { Self::count((*self.anchor).children[0].load(Ordering::SeqCst) as *mut Node<K, V>) }
    }

    /// Is the tree empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    unsafe fn count(n: *mut Node<K, V>) -> usize {
        // SAFETY: pinned per caller.
        let node = unsafe { &*n };
        if node.is_leaf {
            node.keys.len()
        } else {
            (0..=node.keys.len())
                .map(|i| unsafe {
                    Self::count(node.children[i].load(Ordering::SeqCst) as *mut Node<K, V>)
                })
                .sum()
        }
    }
}

impl<K: Key, V: Value> Drop for BlockingABTree<K, V> {
    fn drop(&mut self) {
        // SAFETY: exclusive access.
        unsafe fn free<K: Key, V: Value>(n: *mut Node<K, V>) {
            if n.is_null() {
                return;
            }
            // SAFETY: exclusive teardown.
            unsafe {
                if !(*n).is_leaf {
                    for i in 0..=(*n).keys.len() {
                        free((*n).children[i].load(Ordering::SeqCst) as *mut Node<K, V>);
                    }
                }
                flock_epoch::free_now(n);
            }
        }
        // SAFETY: exclusive access.
        unsafe {
            free((*self.anchor).children[0].load(Ordering::SeqCst) as *mut Node<K, V>);
            flock_epoch::free_now(self.anchor);
        }
    }
}

impl<K: Key, V: Value> Map<K, V> for BlockingABTree<K, V> {
    fn insert(&self, key: K, value: V) -> bool {
        BlockingABTree::insert(self, key, value)
    }
    fn remove(&self, key: K) -> bool {
        BlockingABTree::remove(self, key)
    }
    fn get(&self, key: K) -> Option<V> {
        BlockingABTree::get(self, key)
    }
    fn contains(&self, key: K) -> bool {
        BlockingABTree::contains(self, &key)
    }
    fn name(&self) -> &'static str {
        "srivastava_abtree"
    }
    fn update(&self, key: K, value: V) -> bool {
        BlockingABTree::update(self, key, value)
    }
    fn has_atomic_update(&self) -> bool {
        true
    }
    fn len_approx(&self) -> Option<usize> {
        Some(self.len.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flock_api::testing as testutil;

    #[test]
    fn basic_ops() {
        let t: BlockingABTree<u64, u64> = BlockingABTree::new();
        assert!(t.insert(5, 50));
        assert!(!t.insert(5, 51));
        assert!(t.insert(3, 30));
        assert_eq!(t.get(5), Some(50));
        assert!(t.remove(5));
        assert!(!t.remove(5));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn grows_and_drains() {
        let t: BlockingABTree<u64, u64> = BlockingABTree::new();
        for k in 0..2_000 {
            assert!(t.insert(k, k * 3));
        }
        assert_eq!(t.len(), 2_000);
        for k in 0..2_000 {
            assert_eq!(t.get(k), Some(k * 3));
            assert!(t.remove(k));
        }
        assert!(t.is_empty());
    }

    #[test]
    fn oracle() {
        let t: BlockingABTree<u64, u64> = BlockingABTree::new();
        testutil::oracle_check(&t, 4_000, 512, 51);
    }

    #[test]
    fn concurrent_partitioned() {
        let t: BlockingABTree<u64, u64> = BlockingABTree::new();
        testutil::partition_stress(&t, 4, 1_500);
    }
}
