//! # flock-baselines — comparator data structures for the evaluation
//!
//! From-scratch Rust implementations of the structures the paper's
//! evaluation (§8) compares Flock against:
//!
//! | module | structure | role in the paper |
//! |---|---|---|
//! | [`harris`] | Harris's lock-free linked list (+ the optimized-find variant of David et al.) | Fig. 7 `harris_list`, `harris_list_opt` |
//! | [`natarajan`] | Natarajan–Mittal lock-free external BST (edge flagging) | Fig. 5 `natarajan` |
//! | [`ellen`] | Ellen et al. non-blocking external BST (Info records) | Fig. 5 `ellen` |
//! | [`blocking_bst`] | Bronson-style blocking optimistic internal BST with per-node spin locks | Fig. 5 `bronson`/`drachsler` class |
//! | [`blocking_abtree`] | Srivastava-style blocking optimistic (a,b)-tree | Fig. 6 `srivastava_abtree` |
//!
//! All baselines use `flock-epoch` for reclamation (the comparison should
//! not be confounded by different memory managers) but none of them use
//! Flock locks or logs — the lock-free ones are direct CAS designs with
//! their own flag/mark bits, and the blocking ones use raw
//! test-and-test-and-set spin locks.
//!
//! Divergences from the original systems are documented per-module and in
//! DESIGN.md §4 (notably: `blocking_bst` does not rebalance, so it matches
//! Bronson's locking discipline but not its AVL shape).

#![warn(missing_docs)]

pub mod blocking_abtree;
pub mod blocking_bst;
pub mod ellen;
pub mod harris;
pub mod natarajan;

pub use blocking_abtree::BlockingABTree;
pub use blocking_bst::BlockingBst;
pub use ellen::EllenBst;
pub use harris::HarrisList;
pub use natarajan::NatarajanBst;

/// The same map interface as `flock_ds::ConcurrentMap`, duplicated here so
/// the baselines crate does not depend on `flock-ds` (the bench crate
/// unifies them via adapters).
pub trait BaselineMap: Send + Sync {
    /// Insert `(key, value)`; `false` if the key was present.
    fn insert(&self, key: u64, value: u64) -> bool;
    /// Remove `key`; `false` if absent.
    fn remove(&self, key: u64) -> bool;
    /// Look up `key`.
    fn get(&self, key: u64) -> Option<u64>;
    /// Short display name.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::BaselineMap;
    use std::collections::BTreeMap;

    pub fn oracle_check<M: BaselineMap>(map: &M, ops: usize, key_range: u64, seed: u64) {
        let mut oracle = BTreeMap::new();
        let mut state = seed | 1;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..ops {
            let k = rng() % key_range;
            let v = i as u64;
            match rng() % 3 {
                0 => {
                    let expect = !oracle.contains_key(&k);
                    if expect {
                        oracle.insert(k, v);
                    }
                    assert_eq!(map.insert(k, v), expect, "insert({k}) at op {i}");
                }
                1 => {
                    let expect = oracle.remove(&k).is_some();
                    assert_eq!(map.remove(k), expect, "remove({k}) at op {i}");
                }
                _ => {
                    assert_eq!(map.get(k), oracle.get(&k).copied(), "get({k}) at op {i}");
                }
            }
        }
        for (k, v) in &oracle {
            assert_eq!(map.get(*k), Some(*v), "final sweep at {k}");
        }
    }

    pub fn partition_stress<M: BaselineMap>(map: &M, threads: u64, ops: usize) {
        std::thread::scope(|s| {
            for t in 0..threads {
                let map = &*map;
                s.spawn(move || {
                    let mut present = std::collections::BTreeMap::new();
                    let mut state = (t + 1) * 0x9E37_79B9;
                    let mut rng = move || {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        state
                    };
                    for i in 0..ops {
                        let k = (rng() % 512) * threads + t;
                        let v = i as u64;
                        match rng() % 3 {
                            0 => {
                                let expect = !present.contains_key(&k);
                                if expect {
                                    present.insert(k, v);
                                }
                                assert_eq!(map.insert(k, v), expect, "t{t} insert({k}) op {i}");
                            }
                            1 => {
                                let expect = present.remove(&k).is_some();
                                assert_eq!(map.remove(k), expect, "t{t} remove({k}) op {i}");
                            }
                            _ => {
                                assert_eq!(
                                    map.get(k),
                                    present.get(&k).copied(),
                                    "t{t} get({k}) op {i}"
                                );
                            }
                        }
                    }
                    for (k, v) in &present {
                        assert_eq!(map.get(*k), Some(*v), "t{t} final sweep {k}");
                    }
                });
            }
        });
    }
}
