//! # flock-baselines — comparator data structures for the evaluation
//!
//! From-scratch Rust implementations of the structures the paper's
//! evaluation (§8) compares Flock against:
//!
//! | module | structure | role in the paper |
//! |---|---|---|
//! | [`harris`] | Harris's lock-free linked list (+ the optimized-find variant of David et al.) | Fig. 7 `harris_list`, `harris_list_opt` |
//! | [`natarajan`] | Natarajan–Mittal lock-free external BST (edge flagging) | Fig. 5 `natarajan` |
//! | [`ellen`] | Ellen et al. non-blocking external BST (Info records) | Fig. 5 `ellen` |
//! | [`blocking_bst`] | Bronson-style blocking optimistic internal BST with per-node spin locks | Fig. 5 `bronson`/`drachsler` class |
//! | [`blocking_abtree`] | Srivastava-style blocking optimistic (a,b)-tree | Fig. 6 `srivastava_abtree` |
//!
//! All baselines use `flock-epoch` for reclamation (the comparison should
//! not be confounded by different memory managers) but none of them use
//! Flock locks or logs — the lock-free ones are direct CAS designs with
//! their own flag/mark bits, and the blocking ones use raw
//! test-and-test-and-set spin locks.
//!
//! Every baseline implements [`flock_api::Map`] — the same single interface
//! the Flock structures implement, and **generically over `(K, V)`** like
//! them — so the bench harness needs no adapter layer to mix the two
//! families. Node *keys* are plain generic fields (the CAS designs replace
//! whole nodes), but every baseline stores its *values* in one atomic word
//! of raw `ValueRepr` payload bits (fat values behind an epoch-retired
//! pointer) — the pattern `blocking_bst`'s in-place revive pioneered, now
//! shared via the crate-private `value_cell` module — which is what gives
//! all five a **native atomic `Map::update`** (`has_atomic_update()` is
//! true across the whole bench registry; the remove+insert composite is
//! unreachable from it). All five keep their striped maintained counters
//! (`flock_sync::ApproxLen`, shared with the Flock structures since the
//! `ValueRepr` refactor) behind `Map::len_approx`.
//!
//! Divergences from the original systems are documented per-module and in
//! DESIGN.md §4 (notably: `blocking_bst` does not rebalance, so it matches
//! Bronson's locking discipline but not its AVL shape).

#![warn(missing_docs)]

pub mod blocking_abtree;
pub mod blocking_bst;
pub mod ellen;
pub mod harris;
pub mod natarajan;
mod value_cell;

pub use blocking_abtree::BlockingABTree;
pub use blocking_bst::BlockingBst;
pub use ellen::EllenBst;
pub use harris::HarrisList;
pub use natarajan::NatarajanBst;

pub use flock_api::Map;
