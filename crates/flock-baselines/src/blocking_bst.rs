//! Bronson-style *blocking* optimistic internal BST with per-node spin
//! locks — the blocking strict-lock comparator class of the paper's
//! Figure 5 (`bronson`, `drachsler`).
//!
//! Internal (node-holds-key) BST with logical deletion: a node with two
//! children is deleted by clearing its `has_value` flag (it remains as a
//! routing node); nodes with at most one child are spliced out under
//! parent + node locks. Traversals take no locks; updates lock a small
//! neighborhood and validate.
//!
//! Documented divergence (DESIGN.md §4): no AVL rebalancing — the locking
//! discipline and optimistic validation match Bronson's practical
//! concurrent BST, but the shape is that of a randomized BST. Under the
//! evaluation's random keys the expected depth is `O(log n)`, so the
//! qualitative comparisons carry over; the absolute advantage Bronson's
//! balance gives on 100M-key trees does not.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

use crate::counter::ApproxLen;

use flock_sync::TtasLock;

use flock_api::Map;

struct Node {
    key: u64,
    value: AtomicU64,
    /// False = routing node (logically deleted).
    has_value: AtomicBool,
    /// True once spliced out of the tree.
    removed: AtomicBool,
    left: AtomicUsize,
    right: AtomicUsize,
    lock: TtasLock,
}

impl Node {
    fn new(key: u64, value: u64) -> Self {
        Self {
            key,
            value: AtomicU64::new(value),
            has_value: AtomicBool::new(true),
            removed: AtomicBool::new(false),
            left: AtomicUsize::new(0),
            right: AtomicUsize::new(0),
            lock: TtasLock::new(),
        }
    }

    #[inline]
    fn child(&self, k: u64) -> &AtomicUsize {
        if k < self.key {
            &self.left
        } else {
            &self.right
        }
    }
}

/// Blocking optimistic internal BST map.
pub struct BlockingBst {
    /// Maintained element count backing `len_approx`.
    len: ApproxLen,
    /// Sentinel root; real tree hangs off `left` (sentinel key is +inf in
    /// spirit: every key routes left).
    root: *mut Node,
}

// SAFETY: per-node spin locks for mutation; epoch reclamation.
unsafe impl Send for BlockingBst {}
unsafe impl Sync for BlockingBst {}

impl Default for BlockingBst {
    fn default() -> Self {
        Self::new()
    }
}

impl BlockingBst {
    /// An empty tree.
    pub fn new() -> Self {
        Self {
            root: flock_epoch::alloc(Node::new(u64::MAX, 0)),
            len: ApproxLen::new(),
        }
    }

    #[inline]
    fn root_child<'a>(&self, root: &'a Node, _k: u64) -> &'a AtomicUsize {
        &root.left // sentinel routes everything left
    }

    /// Unlocked descent to the node with `k` (or its would-be parent).
    /// Returns `(parent, node_or_null)`.
    fn search(&self, k: u64) -> (*mut Node, *mut Node) {
        let mut parent = self.root;
        // SAFETY: caller pinned; nodes epoch-reclaimed.
        let mut cur = self
            .root_child(unsafe { &*parent }, k)
            .load(Ordering::SeqCst) as *mut Node;
        while !cur.is_null() {
            // SAFETY: pinned.
            let c = unsafe { &*cur };
            if c.key == k {
                return (parent, cur);
            }
            parent = cur;
            cur = c.child(k).load(Ordering::SeqCst) as *mut Node;
        }
        (parent, std::ptr::null_mut())
    }

    /// Insert; `false` if present.
    pub fn insert(&self, k: u64, v: u64) -> bool {
        let ok = self.insert_impl(k, v);
        if ok {
            self.len.inc();
        }
        ok
    }

    fn insert_impl(&self, k: u64, v: u64) -> bool {
        let _g = flock_epoch::pin();
        loop {
            let (parent, node) = self.search(k);
            if !node.is_null() {
                // SAFETY: pinned.
                let n = unsafe { &*node };
                // Key node exists: revive it if it is a routing node.
                n.lock.acquire();
                let ok = if n.removed.load(Ordering::SeqCst) {
                    None // restart: spliced while we looked
                } else if n.has_value.load(Ordering::SeqCst) {
                    Some(false)
                } else {
                    n.value.store(v, Ordering::SeqCst);
                    n.has_value.store(true, Ordering::SeqCst);
                    Some(true)
                };
                n.lock.release();
                if let Some(r) = ok {
                    return r;
                }
                continue;
            }
            // SAFETY: pinned.
            let p = unsafe { &*parent };
            p.lock.acquire();
            let cell = if parent == self.root {
                self.root_child(p, k)
            } else {
                p.child(k)
            };
            let ok = if p.removed.load(Ordering::SeqCst) || cell.load(Ordering::SeqCst) != 0 {
                false // validate: parent gone or slot taken
            } else {
                let newn = flock_epoch::alloc(Node::new(k, v));
                cell.store(newn as usize, Ordering::SeqCst);
                true
            };
            p.lock.release();
            if ok {
                return true;
            }
        }
    }

    /// Remove; `false` if absent.
    pub fn remove(&self, k: u64) -> bool {
        let ok = self.remove_impl(k);
        if ok {
            self.len.dec();
        }
        ok
    }

    fn remove_impl(&self, k: u64) -> bool {
        let _g = flock_epoch::pin();
        loop {
            let (parent, node) = self.search(k);
            if node.is_null() {
                return false;
            }
            // SAFETY: pinned.
            let p = unsafe { &*parent };
            let n = unsafe { &*node };
            p.lock.acquire();
            n.lock.acquire();
            enum Out {
                Done(bool),
                Retry,
            }
            let cell = if parent == self.root {
                self.root_child(p, k)
            } else {
                p.child(k)
            };
            let out = if p.removed.load(Ordering::SeqCst)
                || n.removed.load(Ordering::SeqCst)
                || cell.load(Ordering::SeqCst) != node as usize
            {
                Out::Retry
            } else if !n.has_value.load(Ordering::SeqCst) {
                Out::Done(false) // routing node: key logically absent
            } else {
                let l = n.left.load(Ordering::SeqCst);
                let r = n.right.load(Ordering::SeqCst);
                if l != 0 && r != 0 {
                    // Two children: logical delete; node stays for routing.
                    n.has_value.store(false, Ordering::SeqCst);
                } else {
                    // At most one child: splice out physically.
                    n.removed.store(true, Ordering::SeqCst);
                    cell.store(if l != 0 { l } else { r }, Ordering::SeqCst);
                    // SAFETY: unlinked above under both locks; unique retire.
                    unsafe { flock_epoch::retire(node) };
                }
                Out::Done(true)
            };
            n.lock.release();
            p.lock.release();
            match out {
                Out::Done(r) => return r,
                Out::Retry => continue,
            }
        }
    }

    /// Wait-free lookup.
    pub fn get(&self, k: u64) -> Option<u64> {
        let _g = flock_epoch::pin();
        let (_, node) = self.search(k);
        if node.is_null() {
            return None;
        }
        // SAFETY: pinned.
        let n = unsafe { &*node };
        (n.has_value.load(Ordering::SeqCst) && !n.removed.load(Ordering::SeqCst))
            .then(|| n.value.load(Ordering::SeqCst))
    }

    /// Element count (live keys; O(n)).
    pub fn len(&self) -> usize {
        let _g = flock_epoch::pin();
        // SAFETY: pinned walk.
        unsafe { Self::count((*self.root).left.load(Ordering::SeqCst) as *mut Node) }
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    unsafe fn count(n: *mut Node) -> usize {
        if n.is_null() {
            return 0;
        }
        // SAFETY: pinned per caller.
        let node = unsafe { &*n };
        node.has_value.load(Ordering::SeqCst) as usize
            + unsafe {
                Self::count(node.left.load(Ordering::SeqCst) as *mut Node)
                    + Self::count(node.right.load(Ordering::SeqCst) as *mut Node)
            }
    }
}

impl Drop for BlockingBst {
    fn drop(&mut self) {
        // SAFETY: exclusive access; spliced nodes belong to the collector.
        unsafe fn free(n: *mut Node) {
            if n.is_null() {
                return;
            }
            // SAFETY: exclusive teardown.
            unsafe {
                free((*n).left.load(Ordering::SeqCst) as *mut Node);
                free((*n).right.load(Ordering::SeqCst) as *mut Node);
                flock_epoch::free_now(n);
            }
        }
        // SAFETY: exclusive access.
        unsafe { free(self.root) };
    }
}

impl Map<u64, u64> for BlockingBst {
    fn insert(&self, key: u64, value: u64) -> bool {
        BlockingBst::insert(self, key, value)
    }
    fn remove(&self, key: u64) -> bool {
        BlockingBst::remove(self, key)
    }
    fn get(&self, key: u64) -> Option<u64> {
        BlockingBst::get(self, key)
    }
    fn name(&self) -> &'static str {
        "bronson_style_bst"
    }
    fn len_approx(&self) -> Option<usize> {
        Some(self.len.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flock_api::testing as testutil;

    #[test]
    fn basic_ops() {
        let t = BlockingBst::new();
        assert!(t.insert(5, 50));
        assert!(!t.insert(5, 51));
        assert!(t.insert(3, 30));
        assert!(t.insert(8, 80));
        assert_eq!(t.get(5), Some(50));
        assert!(t.remove(5)); // two children: logical delete
        assert_eq!(t.get(5), None);
        assert!(t.insert(5, 55)); // revival of the routing node
        assert_eq!(t.get(5), Some(55));
        assert!(t.remove(3)); // leaf: physical splice
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn oracle() {
        let t = BlockingBst::new();
        testutil::oracle_check(&t, 4_000, 256, 41);
    }

    #[test]
    fn concurrent_partitioned() {
        let t = BlockingBst::new();
        testutil::partition_stress(&t, 4, 1_500);
    }
}
