//! Bronson-style *blocking* optimistic internal BST with per-node spin
//! locks — the blocking strict-lock comparator class of the paper's
//! Figure 5 (`bronson`, `drachsler`). Generic over `(K, V)`.
//!
//! Internal (node-holds-key) BST with logical deletion: a node with two
//! children is deleted by clearing its `has_value` flag (it remains as a
//! routing node); nodes with at most one child are spliced out under
//! parent + node locks. Traversals take no locks; updates lock a small
//! neighborhood and validate.
//!
//! Values live in a **raw `ValueRepr` slot** (one atomic word of encoded
//! payload bits): an internal BST *revives* a routing node in place when
//! its key is re-inserted, and readers read the value without the node's
//! lock — so the value must be a single atomic word. Inline values are
//! stored as their own bits (note: like every 48-bit slot in this
//! workspace, u64 values must fit 48 bits); fat `Indirect<T>` values are
//! stored as an epoch-managed pointer, and a revive retires the displaced
//! encoding so concurrent readers keep a stable snapshot.
//!
//! Documented divergence (DESIGN.md §4): no AVL rebalancing — the locking
//! discipline and optimistic validation match Bronson's practical
//! concurrent BST, but the shape is that of a randomized BST. Under the
//! evaluation's random keys the expected depth is `O(log n)`, so the
//! qualitative comparisons carry over; the absolute advantage Bronson's
//! balance gives on 100M-key trees does not.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

use flock_sync::{ApproxLen, TtasLock};

use flock_api::{Key, Map, Value};

struct Node<K, V: Value> {
    /// `None` only on the root sentinel.
    key: Option<K>,
    /// Encoded `ValueRepr` payload bits of the current value. Meaningful
    /// only while `has_value` is true, but the encoding stays live (and is
    /// freed at node drop) even while logically deleted.
    value_bits: AtomicU64,
    /// False = routing node (logically deleted).
    has_value: AtomicBool,
    /// True once spliced out of the tree.
    removed: AtomicBool,
    left: AtomicUsize,
    right: AtomicUsize,
    lock: TtasLock,
    _v: std::marker::PhantomData<V>,
}

impl<K: Key, V: Value> Node<K, V> {
    fn new(key: Option<K>, value: V) -> Self {
        Self {
            key,
            value_bits: AtomicU64::new(V::encode(value)),
            has_value: AtomicBool::new(true),
            removed: AtomicBool::new(false),
            left: AtomicUsize::new(0),
            right: AtomicUsize::new(0),
            lock: TtasLock::new(),
            _v: std::marker::PhantomData,
        }
    }

    #[inline]
    fn child(&self, k: &K) -> &AtomicUsize {
        if self.key.as_ref().is_some_and(|x| k < x) {
            &self.left
        } else {
            &self.right
        }
    }

    /// Snapshot-decode the current value. Caller must be epoch-pinned.
    #[inline]
    fn value(&self) -> V {
        // SAFETY: `value_bits` always holds a live encoding — revives
        // retire the displaced one through the collector, and the final one
        // is freed only at node drop (post-grace for retired nodes); the
        // caller is pinned.
        unsafe { V::decode(self.value_bits.load(Ordering::SeqCst)) }
    }

    /// Replace the value under this node's lock, retiring the displaced
    /// encoding. Caller must hold `self.lock` and be epoch-pinned.
    #[inline]
    fn replace_value(&self, v: V) {
        let old = self.value_bits.swap(V::encode(v), Ordering::SeqCst);
        // SAFETY: `old` was displaced by the swap above, under the node
        // lock (no competing writer), and the caller is pinned; readers
        // that still decode it are protected by the grace period.
        unsafe { V::retire_bits(old) };
    }
}

impl<K, V: Value> Drop for Node<K, V> {
    fn drop(&mut self) {
        // The root sentinel (the only keyless node) carries no encoding —
        // its slot holds `SENTINEL_BITS`, which must not reach the repr's
        // dealloc hook.
        if self.key.is_some() {
            // SAFETY: exclusive access (drop); the final encoding is freed
            // exactly once. For nodes that went through the collector this
            // runs after the grace period.
            unsafe { V::dealloc_bits(self.value_bits.load(Ordering::Relaxed)) };
        }
    }
}

/// Blocking optimistic internal BST map.
pub struct BlockingBst<K: Key, V: Value> {
    /// Maintained element count backing `len_approx`.
    len: ApproxLen,
    /// Sentinel root; real tree hangs off `left` (sentinel key is +inf in
    /// spirit: every key routes left).
    root: *mut Node<K, V>,
}

// SAFETY: per-node spin locks for mutation; epoch reclamation.
unsafe impl<K: Key, V: Value> Send for BlockingBst<K, V> {}
unsafe impl<K: Key, V: Value> Sync for BlockingBst<K, V> {}

impl<K: Key, V: Value> Default for BlockingBst<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Key, V: Value> BlockingBst<K, V> {
    /// An empty tree.
    pub fn new() -> Self {
        // The sentinel's value slot is never read (its key is `None`, so no
        // lookup ever matches it) and holds no encoding — `Node::drop`
        // skips the keyless sentinel.
        let root = flock_epoch::alloc(Node {
            key: None,
            value_bits: AtomicU64::new(SENTINEL_BITS),
            has_value: AtomicBool::new(false),
            removed: AtomicBool::new(false),
            left: AtomicUsize::new(0),
            right: AtomicUsize::new(0),
            lock: TtasLock::new(),
            _v: std::marker::PhantomData,
        });
        Self {
            root,
            len: ApproxLen::new(),
        }
    }

    /// Unlocked descent to the node with `k` (or its would-be parent).
    /// Returns `(parent, node_or_null)`.
    fn search(&self, k: &K) -> (*mut Node<K, V>, *mut Node<K, V>) {
        let mut parent = self.root;
        // SAFETY: caller pinned; nodes epoch-reclaimed. The sentinel routes
        // everything left (its key is None).
        let mut cur = unsafe { &*parent }.left.load(Ordering::SeqCst) as *mut Node<K, V>;
        while !cur.is_null() {
            // SAFETY: pinned.
            let c = unsafe { &*cur };
            if c.key.as_ref() == Some(k) {
                return (parent, cur);
            }
            parent = cur;
            cur = c.child(k).load(Ordering::SeqCst) as *mut Node<K, V>;
        }
        (parent, std::ptr::null_mut())
    }

    /// Insert; `false` if present.
    pub fn insert(&self, k: K, v: V) -> bool {
        let ok = self.insert_impl(k, v);
        if ok {
            self.len.inc();
        }
        ok
    }

    fn insert_impl(&self, k: K, v: V) -> bool {
        let _g = flock_epoch::pin();
        loop {
            let (parent, node) = self.search(&k);
            if !node.is_null() {
                // SAFETY: pinned.
                let n = unsafe { &*node };
                // Key node exists: revive it if it is a routing node.
                n.lock.acquire();
                let ok = if n.removed.load(Ordering::SeqCst) {
                    None // restart: spliced while we looked
                } else if n.has_value.load(Ordering::SeqCst) {
                    Some(false)
                } else {
                    n.replace_value(v.clone());
                    n.has_value.store(true, Ordering::SeqCst);
                    Some(true)
                };
                n.lock.release();
                if let Some(r) = ok {
                    return r;
                }
                continue;
            }
            // SAFETY: pinned.
            let p = unsafe { &*parent };
            p.lock.acquire();
            let cell = if parent == self.root {
                &p.left // sentinel routes everything left
            } else {
                p.child(&k)
            };
            let ok = if p.removed.load(Ordering::SeqCst) || cell.load(Ordering::SeqCst) != 0 {
                false // validate: parent gone or slot taken
            } else {
                let newn = flock_epoch::alloc(Node::new(Some(k.clone()), v.clone()));
                cell.store(newn as usize, Ordering::SeqCst);
                true
            };
            p.lock.release();
            if ok {
                return true;
            }
        }
    }

    /// Remove; `false` if absent.
    pub fn remove(&self, k: K) -> bool {
        let ok = self.remove_impl(&k);
        if ok {
            self.len.dec();
        }
        ok
    }

    fn remove_impl(&self, k: &K) -> bool {
        let _g = flock_epoch::pin();
        loop {
            let (parent, node) = self.search(k);
            if node.is_null() {
                return false;
            }
            // SAFETY: pinned.
            let p = unsafe { &*parent };
            let n = unsafe { &*node };
            p.lock.acquire();
            n.lock.acquire();
            enum Out {
                Done(bool),
                Retry,
            }
            let cell = if parent == self.root {
                &p.left
            } else {
                p.child(k)
            };
            let out = if p.removed.load(Ordering::SeqCst)
                || n.removed.load(Ordering::SeqCst)
                || cell.load(Ordering::SeqCst) != node as usize
            {
                Out::Retry
            } else if !n.has_value.load(Ordering::SeqCst) {
                Out::Done(false) // routing node: key logically absent
            } else {
                let l = n.left.load(Ordering::SeqCst);
                let r = n.right.load(Ordering::SeqCst);
                if l != 0 && r != 0 {
                    // Two children: logical delete; node stays for routing.
                    n.has_value.store(false, Ordering::SeqCst);
                } else {
                    // At most one child: splice out physically.
                    n.removed.store(true, Ordering::SeqCst);
                    cell.store(if l != 0 { l } else { r }, Ordering::SeqCst);
                    // SAFETY: unlinked above under both locks; unique retire.
                    unsafe { flock_epoch::retire(node) };
                }
                Out::Done(true)
            };
            n.lock.release();
            p.lock.release();
            match out {
                Out::Done(r) => return r,
                Out::Retry => continue,
            }
        }
    }

    /// Native atomic update: replace the value in place under the node's
    /// lock (the same slot-swap the revive path uses). Returns `false`
    /// (storing nothing) if `k` is absent. Readers snapshot the value word
    /// without the lock, so they see the old value or the new one — never
    /// absence.
    pub fn update(&self, k: K, v: V) -> bool {
        let _g = flock_epoch::pin();
        loop {
            let (_, node) = self.search(&k);
            if node.is_null() {
                return false;
            }
            // SAFETY: pinned.
            let n = unsafe { &*node };
            n.lock.acquire();
            let out = if n.removed.load(Ordering::SeqCst) {
                None // spliced while we looked: restart
            } else if n.has_value.load(Ordering::SeqCst) {
                n.replace_value(v.clone());
                Some(true)
            } else {
                Some(false) // routing node: key logically absent
            };
            n.lock.release();
            if let Some(r) = out {
                return r;
            }
        }
    }

    /// Wait-free lookup.
    pub fn get(&self, k: K) -> Option<V> {
        let _g = flock_epoch::pin();
        let (_, node) = self.search(&k);
        if node.is_null() {
            return None;
        }
        // SAFETY: pinned.
        let n = unsafe { &*node };
        (n.has_value.load(Ordering::SeqCst) && !n.removed.load(Ordering::SeqCst)).then(|| n.value())
    }

    /// Presence-only lookup: the same search as [`BlockingBst::get`]
    /// without decoding the value word.
    pub fn contains(&self, k: &K) -> bool {
        let _g = flock_epoch::pin();
        let (_, node) = self.search(k);
        if node.is_null() {
            return false;
        }
        // SAFETY: pinned.
        let n = unsafe { &*node };
        n.has_value.load(Ordering::SeqCst) && !n.removed.load(Ordering::SeqCst)
    }

    /// Element count (live keys; O(n)).
    pub fn len(&self) -> usize {
        let _g = flock_epoch::pin();
        // SAFETY: pinned walk.
        unsafe { Self::count((*self.root).left.load(Ordering::SeqCst) as *mut Node<K, V>) }
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    unsafe fn count(n: *mut Node<K, V>) -> usize {
        if n.is_null() {
            return 0;
        }
        // SAFETY: pinned per caller.
        let node = unsafe { &*n };
        node.has_value.load(Ordering::SeqCst) as usize
            + unsafe {
                Self::count(node.left.load(Ordering::SeqCst) as *mut Node<K, V>)
                    + Self::count(node.right.load(Ordering::SeqCst) as *mut Node<K, V>)
            }
    }
}

/// Placeholder bits in the sentinel's never-read, never-freed value slot.
const SENTINEL_BITS: u64 = 0;

impl<K: Key, V: Value> Drop for BlockingBst<K, V> {
    fn drop(&mut self) {
        // SAFETY: exclusive access; spliced nodes belong to the collector.
        unsafe fn free<K: Key, V: Value>(n: *mut Node<K, V>) {
            if n.is_null() {
                return;
            }
            // SAFETY: exclusive teardown.
            unsafe {
                free::<K, V>((*n).left.load(Ordering::SeqCst) as *mut Node<K, V>);
                free::<K, V>((*n).right.load(Ordering::SeqCst) as *mut Node<K, V>);
                flock_epoch::free_now(n);
            }
        }
        // SAFETY: exclusive access.
        unsafe { free::<K, V>(self.root) };
    }
}

impl<K: Key, V: Value> Map<K, V> for BlockingBst<K, V> {
    fn insert(&self, key: K, value: V) -> bool {
        BlockingBst::insert(self, key, value)
    }
    fn remove(&self, key: K) -> bool {
        BlockingBst::remove(self, key)
    }
    fn get(&self, key: K) -> Option<V> {
        BlockingBst::get(self, key)
    }
    fn contains(&self, key: K) -> bool {
        BlockingBst::contains(self, &key)
    }
    fn name(&self) -> &'static str {
        "bronson_style_bst"
    }
    fn update(&self, key: K, value: V) -> bool {
        BlockingBst::update(self, key, value)
    }
    fn has_atomic_update(&self) -> bool {
        true
    }
    fn len_approx(&self) -> Option<usize> {
        Some(self.len.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flock_api::testing as testutil;

    #[test]
    fn basic_ops() {
        let t: BlockingBst<u64, u64> = BlockingBst::new();
        assert!(t.insert(5, 50));
        assert!(!t.insert(5, 51));
        assert!(t.insert(3, 30));
        assert!(t.insert(8, 80));
        assert_eq!(t.get(5), Some(50));
        assert!(t.remove(5)); // two children: logical delete
        assert_eq!(t.get(5), None);
        assert!(t.insert(5, 55)); // revival of the routing node
        assert_eq!(t.get(5), Some(55));
        assert!(t.remove(3)); // leaf: physical splice
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn revive_with_fat_values_reclaims_displaced_encoding() {
        testutil::exclusive(|| {
            use flock_epoch::Indirect;
            let t: BlockingBst<u64, Indirect<Vec<u64>>> = BlockingBst::new();
            assert!(t.insert(5, Indirect(vec![5; 8])));
            assert!(t.insert(3, Indirect(vec![3; 8])));
            assert!(t.insert(8, Indirect(vec![8; 8])));
            assert!(t.remove(5)); // logical delete (two children)
            assert!(t.insert(5, Indirect(vec![55; 8]))); // revive: swaps encodings
            assert_eq!(t.get(5), Some(Indirect(vec![55; 8])));
            drop(t);
            flock_epoch::flush_all();
        });
    }

    #[test]
    fn oracle() {
        let t: BlockingBst<u64, u64> = BlockingBst::new();
        testutil::oracle_check(&t, 4_000, 256, 41);
    }

    #[test]
    fn concurrent_partitioned() {
        let t: BlockingBst<u64, u64> = BlockingBst::new();
        testutil::partition_stress(&t, 4, 1_500);
    }
}
