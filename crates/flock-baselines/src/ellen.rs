//! Ellen et al. non-blocking external BST (PODC 2010 design): cooperative
//! updates through *Info records*. Generic over `(K, V)`.
//!
//! Each internal node carries an `update` word — a pointer to an Info
//! record plus a 2-bit state (CLEAN / IFLAG / DFLAG / MARK). An insert
//! flags the parent (IFLAG) with an IInfo describing the child swap; a
//! delete flags the grandparent (DFLAG), marks the parent (MARK), then
//! splices. Any thread that encounters a non-clean update word *helps* the
//! recorded operation to completion before proceeding — the canonical
//! hand-crafted helping protocol that the paper's general lock-free locks
//! subsume.
//!
//! Reclamation: spliced nodes are retired through the epoch collector by
//! the unique dchild-CAS winner. Info records are *not* reclaimed during
//! the tree's lifetime: a Delete info is referenced from two update words
//! (the owning grandparent and the marked parent), and stale helpers can
//! hold update words arbitrarily long, so replaced records are parked on a
//! per-tree garbage list and freed at drop. Update words also carry a
//! 16-bit sequence stamp so a stale helper's CAS can never succeed
//! spuriously.

use std::sync::atomic::{AtomicUsize, Ordering};

use flock_sync::ApproxLen;

use flock_api::{Key, Map, Value};

use crate::value_cell::ValueCell;

const CLEAN: usize = 0;
const IFLAG: usize = 1;
const DFLAG: usize = 2;
const MARK: usize = 3;
const STATE: usize = 3;
/// Pointer bits of an update word (pointers fit 48 bits on supported
/// targets; the low 2 bits carry the state).
const PTR_MASK: usize = 0x0000_FFFF_FFFF_FFFC;
/// High 16 bits: a sequence number bumped on every update-word transition.
/// A stale helper can hold an update word whose embedded Info address was
/// replaced; the sequence stamp makes such a helper's CAS fail instead of
/// succeeding spuriously (ABA).
const SEQ_SHIFT: u32 = 48;

#[inline]
fn state(w: usize) -> usize {
    w & STATE
}

#[inline]
fn info_of<K, V: Value>(w: usize) -> *mut Info<K, V> {
    (w & PTR_MASK) as *mut Info<K, V>
}

#[inline]
fn seq_of(w: usize) -> usize {
    w >> SEQ_SHIFT
}

/// Build the update word that replaces `prev`: new info + state, sequence
/// bumped by one (mod 2^16).
#[inline]
fn next_word<K, V: Value>(prev: usize, info: *mut Info<K, V>, st: usize) -> usize {
    debug_assert_eq!(info as usize & !PTR_MASK, 0);
    info as usize | st | (seq_of(prev).wrapping_add(1) << SEQ_SHIFT)
}

/// Sentinel-aware key: finite keys order below Inf1 below Inf2.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord)]
enum KeyClass<K> {
    Finite(K),
    Inf1,
    Inf2,
}

struct Node<K, V: Value> {
    key: KeyClass<K>,
    /// Atomic value cell (`None` on sentinel leaves and internals): swap-
    /// replaced in place by the native `update`, snapshot-read by `get`.
    value: Option<ValueCell<V>>,
    is_leaf: bool,
    left: AtomicUsize,
    right: AtomicUsize,
    /// Info pointer | state bits; coordinates updates at this internal.
    update: AtomicUsize,
}

impl<K: Key, V: Value> Node<K, V> {
    fn leaf(key: KeyClass<K>, value: Option<V>) -> Self {
        Self {
            key,
            value: value.map(ValueCell::new),
            is_leaf: true,
            left: AtomicUsize::new(0),
            right: AtomicUsize::new(0),
            update: AtomicUsize::new(0),
        }
    }

    fn internal(key: KeyClass<K>, left: *mut Node<K, V>, right: *mut Node<K, V>) -> Self {
        Self {
            key,
            value: None,
            is_leaf: false,
            left: AtomicUsize::new(left as usize),
            right: AtomicUsize::new(right as usize),
            update: AtomicUsize::new(0),
        }
    }

    #[inline]
    fn child(&self, k: &KeyClass<K>) -> &AtomicUsize {
        if k < &self.key {
            &self.left
        } else {
            &self.right
        }
    }
}

enum Info<K, V: Value> {
    /// Swap `leaf` under `parent` for `new_internal`.
    Insert {
        parent: *mut Node<K, V>,
        leaf: *mut Node<K, V>,
        new_internal: *mut Node<K, V>,
    },
    /// Splice `parent` + `leaf` out from under `gparent`.
    Delete {
        gparent: *mut Node<K, V>,
        parent: *mut Node<K, V>,
        leaf: *mut Node<K, V>,
        /// Parent's update word observed at flag time.
        pupdate: usize,
    },
}

/// Non-blocking external BST map (Ellen et al. style).
pub struct EllenBst<K: Key, V: Value> {
    /// Maintained element count backing `len_approx`.
    len: ApproxLen,
    root: *mut Node<K, V>,
    /// Replaced Info records, freed only at drop. Deferring all Info
    /// reclamation to teardown removes every use-after-free/ABA window on
    /// update words by construction (an Info address is never reused while
    /// the tree lives), at the cost of ~56 bytes per completed update until
    /// the tree is dropped — fine for a benchmark baseline and simpler to
    /// trust than a grace-period scheme for doubly-referenced records.
    info_garbage: std::sync::Mutex<Vec<usize>>,
}

// SAFETY: CAS-based mutation; epoch reclamation.
unsafe impl<K: Key, V: Value> Send for EllenBst<K, V> {}
unsafe impl<K: Key, V: Value> Sync for EllenBst<K, V> {}

impl<K: Key, V: Value> Default for EllenBst<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

struct Search<K, V: Value> {
    gparent: *mut Node<K, V>,
    parent: *mut Node<K, V>,
    leaf: *mut Node<K, V>,
    pupdate: usize,
    gpupdate: usize,
}

impl<K: Key, V: Value> EllenBst<K, V> {
    /// An empty tree.
    pub fn new() -> Self {
        let l1 = flock_epoch::alloc(Node::leaf(KeyClass::Inf1, None));
        let l2 = flock_epoch::alloc(Node::leaf(KeyClass::Inf2, None));
        let root = flock_epoch::alloc(Node::internal(KeyClass::Inf2, l1, l2));
        Self {
            root,
            info_garbage: std::sync::Mutex::new(Vec::new()),
            len: ApproxLen::new(),
        }
    }

    fn search(&self, k: &KeyClass<K>) -> Search<K, V> {
        let mut gparent = std::ptr::null_mut();
        let mut gpupdate = 0;
        let mut parent = self.root;
        // SAFETY: caller pinned.
        let mut pupdate = unsafe { &*parent }.update.load(Ordering::SeqCst);
        let mut leaf = unsafe { &*parent }.child(k).load(Ordering::SeqCst) as *mut Node<K, V>;
        // SAFETY: pinned.
        while !unsafe { &*leaf }.is_leaf {
            gparent = parent;
            gpupdate = pupdate;
            parent = leaf;
            // SAFETY: pinned.
            pupdate = unsafe { &*parent }.update.load(Ordering::SeqCst);
            leaf = unsafe { &*parent }.child(k).load(Ordering::SeqCst) as *mut Node<K, V>;
        }
        Search {
            gparent,
            parent,
            leaf,
            pupdate,
            gpupdate,
        }
    }

    /// Help the operation recorded in update word `w` (non-clean).
    fn help(&self, w: usize) {
        match state(w) {
            IFLAG => self.help_insert(info_of::<K, V>(w)),
            MARK => self.help_marked(info_of::<K, V>(w)),
            DFLAG => {
                let _ = self.help_delete(info_of::<K, V>(w));
            }
            _ => {}
        }
    }

    fn help_insert(&self, op: *mut Info<K, V>) {
        // SAFETY: op reachable from a flagged update word; pinned callers.
        let Info::Insert {
            parent,
            leaf,
            new_internal,
        } = (unsafe { &*op })
        else {
            return;
        };
        // SAFETY: pinned.
        let p = unsafe { &**parent };
        // ichild: swing the child pointer from the old leaf.
        let cell = if p.left.load(Ordering::SeqCst) == *leaf as usize {
            Some(&p.left)
        } else if p.right.load(Ordering::SeqCst) == *leaf as usize {
            Some(&p.right)
        } else {
            None
        };
        if let Some(cell) = cell {
            let _ = cell.compare_exchange(
                *leaf as usize,
                *new_internal as usize,
                Ordering::SeqCst,
                Ordering::SeqCst,
            );
        }
        // Unflag: replace (op, IFLAG) with (op, CLEAN), bumping the seq.
        let cur = p.update.load(Ordering::SeqCst);
        if info_of::<K, V>(cur) == op && state(cur) == IFLAG {
            let _ = p.update.compare_exchange(
                cur,
                next_word(cur, op, CLEAN),
                Ordering::SeqCst,
                Ordering::SeqCst,
            );
        }
    }

    /// Second phase of delete: parent is marked; splice it.
    fn help_marked(&self, op: *mut Info<K, V>) {
        // SAFETY: as help_insert.
        let Info::Delete {
            gparent,
            parent,
            leaf,
            ..
        } = (unsafe { &*op })
        else {
            return;
        };
        // SAFETY: pinned.
        let g = unsafe { &**gparent };
        let p = unsafe { &**parent };
        // Sibling of the victim leaf under parent.
        let sibling = if p.left.load(Ordering::SeqCst) == *leaf as usize {
            p.right.load(Ordering::SeqCst)
        } else {
            p.left.load(Ordering::SeqCst)
        };
        // dchild: replace parent with sibling under gparent.
        let cell = if g.left.load(Ordering::SeqCst) == *parent as usize {
            Some(&g.left)
        } else if g.right.load(Ordering::SeqCst) == *parent as usize {
            Some(&g.right)
        } else {
            None
        };
        if let Some(cell) = cell
            && cell
                .compare_exchange(
                    *parent as usize,
                    sibling,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_ok()
        {
            // Unique winner: retire the spliced pair.
            // SAFETY: both now unreachable; retired once.
            unsafe {
                flock_epoch::retire(*parent);
                flock_epoch::retire(*leaf);
            }
        }
        // Unflag the grandparent: (op, DFLAG) -> (op, CLEAN), seq bumped.
        let cur = g.update.load(Ordering::SeqCst);
        if info_of::<K, V>(cur) == op && state(cur) == DFLAG {
            let _ = g.update.compare_exchange(
                cur,
                next_word(cur, op, CLEAN),
                Ordering::SeqCst,
                Ordering::SeqCst,
            );
        }
    }

    /// First phase of delete after DFLAG: mark the parent, then splice.
    /// Returns false if the mark failed and the flag was backtracked.
    fn help_delete(&self, op: *mut Info<K, V>) -> bool {
        // SAFETY: as help_insert.
        let Info::Delete {
            gparent,
            parent,
            pupdate,
            ..
        } = (unsafe { &*op })
        else {
            return false;
        };
        // SAFETY: pinned.
        let p = unsafe { &**parent };
        let res = p.update.compare_exchange(
            *pupdate,
            next_word(*pupdate, op, MARK),
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
        match res {
            Ok(_) => {
                self.help_marked(op);
                true
            }
            Err(cur) if info_of::<K, V>(cur) == op && state(cur) == MARK => {
                // Someone already marked it for this op.
                self.help_marked(op);
                true
            }
            Err(cur) => {
                // Parent busy with another operation: help it, then
                // backtrack our flag so the tree does not wedge.
                self.help(cur);
                // SAFETY: pinned.
                let g = unsafe { &**gparent };
                let gcur = g.update.load(Ordering::SeqCst);
                if info_of::<K, V>(gcur) == op && state(gcur) == DFLAG {
                    let _ = g.update.compare_exchange(
                        gcur,
                        next_word(gcur, op, CLEAN),
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    );
                }
                false
            }
        }
    }

    /// Flag-CAS an update word and park the replaced (completed) info
    /// record on the garbage list on success.
    fn flag(&self, node: &Node<K, V>, expected: usize, op: *mut Info<K, V>, st: usize) -> bool {
        if node
            .update
            .compare_exchange(
                expected,
                next_word(expected, op, st),
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_ok()
        {
            let old = info_of::<K, V>(expected);
            if !old.is_null() {
                // `old` described a completed (CLEAN) operation; park it on
                // the garbage list until drop (see `info_garbage`).
                self.info_garbage
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(old as usize);
            }
            true
        } else {
            false
        }
    }

    /// Insert; `false` if present.
    pub fn insert(&self, k: K, v: V) -> bool {
        let ok = self.insert_impl(k, v);
        if ok {
            self.len.inc();
        }
        ok
    }

    fn insert_impl(&self, k: K, v: V) -> bool {
        let kc = KeyClass::Finite(k);
        let _g = flock_epoch::pin();
        loop {
            let s = self.search(&kc);
            // SAFETY: pinned.
            let l = unsafe { &*s.leaf };
            if l.key == kc {
                return false;
            }
            if state(s.pupdate) != CLEAN {
                self.help(s.pupdate);
                continue;
            }
            let new_leaf = flock_epoch::alloc(Node::leaf(kc.clone(), Some(v.clone())));
            let leaf_key = l.key.clone();
            let new_internal = if kc < leaf_key {
                flock_epoch::alloc(Node::internal(leaf_key, new_leaf, s.leaf))
            } else {
                flock_epoch::alloc(Node::internal(kc.clone(), s.leaf, new_leaf))
            };
            let op = flock_epoch::alloc(Info::Insert {
                parent: s.parent,
                leaf: s.leaf,
                new_internal,
            });
            // SAFETY: pinned.
            if self.flag(unsafe { &*s.parent }, s.pupdate, op, IFLAG) {
                self.help_insert(op);
                return true;
            }
            // Flag lost: nothing was published.
            // SAFETY: all three are private allocations.
            unsafe {
                flock_epoch::free_now(op);
                flock_epoch::free_now(new_internal);
                flock_epoch::free_now(new_leaf);
            }
        }
    }

    /// Remove; `false` if absent.
    pub fn remove(&self, k: K) -> bool {
        let ok = self.remove_impl(k);
        if ok {
            self.len.dec();
        }
        ok
    }

    fn remove_impl(&self, k: K) -> bool {
        let kc = KeyClass::Finite(k);
        let _g = flock_epoch::pin();
        loop {
            let s = self.search(&kc);
            // SAFETY: pinned.
            if unsafe { &*s.leaf }.key != kc {
                return false;
            }
            if state(s.gpupdate) != CLEAN {
                self.help(s.gpupdate);
                continue;
            }
            if state(s.pupdate) != CLEAN {
                self.help(s.pupdate);
                continue;
            }
            debug_assert!(!s.gparent.is_null(), "finite leaves sit at depth >= 2");
            let op = flock_epoch::alloc(Info::Delete {
                gparent: s.gparent,
                parent: s.parent,
                leaf: s.leaf,
                pupdate: s.pupdate,
            });
            // SAFETY: pinned.
            if self.flag(unsafe { &*s.gparent }, s.gpupdate, op, DFLAG) {
                if self.help_delete(op) {
                    return true;
                }
                // Backtracked: op stays reachable from stale words read by
                // helpers until replaced; it was published, so it must go
                // through the collector, which happens when the next flag
                // replaces the CLEAN word. Nothing to do here.
            } else {
                // SAFETY: never published.
                unsafe { flock_epoch::free_now(op) };
            }
        }
    }

    /// Lookup.
    pub fn get(&self, k: K) -> Option<V> {
        let kc = KeyClass::Finite(k);
        let _g = flock_epoch::pin();
        let s = self.search(&kc);
        // SAFETY: pinned.
        let l = unsafe { &*s.leaf };
        if l.key == kc {
            l.value.as_ref().map(ValueCell::load)
        } else {
            None
        }
    }

    /// Presence-only lookup: the same search as [`EllenBst::get`] without
    /// decoding the value cell.
    pub fn contains(&self, k: K) -> bool {
        let kc = KeyClass::Finite(k);
        let _g = flock_epoch::pin();
        let s = self.search(&kc);
        // SAFETY: pinned.
        unsafe { &*s.leaf }.key == kc
    }

    /// Native atomic update: one atomic swap of the leaf's value cell.
    /// Returns `false` (storing nothing) if `k` is absent.
    ///
    /// A key's leaf node is pointer-stable for the key's lifetime (inserts
    /// reuse the existing leaf inside the new internal), so the swap hits
    /// the one cell every reader of this key decodes. Linearizes at the
    /// swap when the leaf is still reachable there, and immediately before
    /// the concurrent delete's child-CAS otherwise (the value written into
    /// an already-spliced leaf is unobservable, matching
    /// update-then-remove).
    pub fn update(&self, k: K, v: V) -> bool {
        let kc = KeyClass::Finite(k);
        let _g = flock_epoch::pin();
        let s = self.search(&kc);
        // SAFETY: pinned.
        let l = unsafe { &*s.leaf };
        if l.key != kc {
            return false;
        }
        l.value
            .as_ref()
            .expect("finite-key leaf has a value cell")
            .replace(v);
        true
    }

    /// Element count (O(n)).
    pub fn len(&self) -> usize {
        let _g = flock_epoch::pin();
        // SAFETY: pinned walk.
        unsafe { Self::count(self.root) }
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    unsafe fn count(n: *mut Node<K, V>) -> usize {
        // SAFETY: pinned per caller.
        let node = unsafe { &*n };
        if node.is_leaf {
            return matches!(node.key, KeyClass::Finite(_)) as usize;
        }
        unsafe {
            Self::count(node.left.load(Ordering::SeqCst) as *mut Node<K, V>)
                + Self::count(node.right.load(Ordering::SeqCst) as *mut Node<K, V>)
        }
    }
}

impl<K: Key, V: Value> Drop for EllenBst<K, V> {
    fn drop(&mut self) {
        // SAFETY: exclusive access. An Info record is *owned* by the word
        // it was installed on (the parent for Insert/IFLAG, the grandparent
        // for Delete/DFLAG) and is parked on the garbage list by the
        // flag-CAS that replaces it there; a MARK word holds a secondary
        // reference to a Delete info owned elsewhere. Teardown therefore
        // frees an info only through CLEAN/IFLAG/DFLAG words — freeing
        // through MARK too would double free.
        unsafe fn free<K: Key, V: Value>(n: *mut Node<K, V>) {
            if n.is_null() {
                return;
            }
            // SAFETY: exclusive teardown.
            unsafe {
                let u = (*n).update.load(Ordering::SeqCst);
                let info = info_of::<K, V>(u);
                if !info.is_null() && state(u) != MARK {
                    flock_epoch::free_now(info);
                }
                if !(*n).is_leaf {
                    free((*n).left.load(Ordering::SeqCst) as *mut Node<K, V>);
                    free((*n).right.load(Ordering::SeqCst) as *mut Node<K, V>);
                }
                flock_epoch::free_now(n);
            }
        }
        // SAFETY: exclusive access.
        unsafe { free(self.root) };
        for p in self
            .info_garbage
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
        {
            // SAFETY: garbage entries were replaced in their owning update
            // word exactly once and never freed elsewhere.
            unsafe { flock_epoch::free_now(p as *mut Info<K, V>) };
        }
    }
}

impl<K: Key, V: Value> Map<K, V> for EllenBst<K, V> {
    fn insert(&self, key: K, value: V) -> bool {
        EllenBst::insert(self, key, value)
    }
    fn remove(&self, key: K) -> bool {
        EllenBst::remove(self, key)
    }
    fn get(&self, key: K) -> Option<V> {
        EllenBst::get(self, key)
    }
    fn contains(&self, key: K) -> bool {
        EllenBst::contains(self, key)
    }
    fn name(&self) -> &'static str {
        "ellen"
    }
    fn update(&self, key: K, value: V) -> bool {
        EllenBst::update(self, key, value)
    }
    fn has_atomic_update(&self) -> bool {
        true
    }
    fn len_approx(&self) -> Option<usize> {
        Some(self.len.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flock_api::testing as testutil;

    #[test]
    fn basic_ops() {
        let t: EllenBst<u64, u64> = EllenBst::new();
        assert!(t.is_empty());
        assert!(t.insert(5, 50));
        assert!(!t.insert(5, 51));
        assert!(t.insert(3, 30));
        assert!(t.insert(8, 80));
        assert_eq!(t.get(5), Some(50));
        assert!(t.remove(5));
        assert!(!t.remove(5));
        assert_eq!(t.get(5), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn fill_and_drain() {
        let t: EllenBst<u64, u64> = EllenBst::new();
        for k in 0..1_000 {
            assert!(t.insert(k, k + 7));
        }
        for k in 0..1_000 {
            assert_eq!(t.get(k), Some(k + 7));
            assert!(t.remove(k));
        }
        assert!(t.is_empty());
    }

    #[test]
    fn oracle() {
        let t: EllenBst<u64, u64> = EllenBst::new();
        testutil::oracle_check(&t, 4_000, 256, 61);
    }

    #[test]
    fn concurrent_partitioned() {
        let t: EllenBst<u64, u64> = EllenBst::new();
        testutil::partition_stress(&t, 4, 1_500);
    }

    #[test]
    fn contended_tiny_keyspace() {
        let t: EllenBst<u64, u64> = EllenBst::new();
        std::thread::scope(|s| {
            for tid in 0..4u64 {
                let t = &t;
                s.spawn(move || {
                    let mut state = tid + 1;
                    for _ in 0..4_000 {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        let k = state % 8;
                        if state % 2 == 0 {
                            t.insert(k, k);
                        } else {
                            t.remove(k);
                        }
                    }
                });
            }
        });
        assert!(t.len() <= 8);
    }
}
