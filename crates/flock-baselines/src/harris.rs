//! Harris's lock-free sorted linked list, plus the optimized-find variant.
//! Generic over `(K, V)`.
//!
//! The classic design (Harris, DISC 2001): each node's `next` pointer
//! carries a *mark* bit in its low bit. Deletion first marks the victim's
//! `next` (logical delete), then unlinks it with a CAS on the predecessor
//! (physical delete). Traversals that encounter marked nodes *help* by
//! unlinking them — except in the optimized variant (`HarrisList::new_opt`,
//! the paper's `harris_list_opt` from David et al.'s ASCYLIB guidelines),
//! where `get` walks straight through marked nodes without writing, which
//! the paper measures as ~16% faster than Flock's lazylist on small lists.

use std::sync::atomic::{AtomicUsize, Ordering};

use flock_sync::ApproxLen;

use flock_api::{Key, Map, Value};

use crate::value_cell::ValueCell;

const MARK: usize = 1;

#[inline]
fn marked(p: usize) -> bool {
    p & MARK != 0
}

#[inline]
fn unmark(p: usize) -> usize {
    p & !MARK
}

struct Node<K, V: Value> {
    /// `None` only on the head/tail sentinels.
    key: Option<K>,
    /// Atomic value cell (`None` only on sentinels): swap-replaced in place
    /// by the native `update`, snapshot-read by `get`.
    value: Option<ValueCell<V>>,
    /// Successor pointer; low bit = this node is logically deleted.
    next: AtomicUsize,
    kind: u8, // 0 normal, 1 head, 2 tail
}

const NORMAL: u8 = 0;
const HEAD: u8 = 1;
const TAIL: u8 = 2;

impl<K: Key, V: Value> Node<K, V> {
    fn new(key: Option<K>, value: Option<V>, next: usize, kind: u8) -> Self {
        Self {
            key,
            value: value.map(ValueCell::new),
            next: AtomicUsize::new(next),
            kind,
        }
    }

    #[inline]
    fn at_or_after(&self, k: &K) -> bool {
        match self.kind {
            TAIL => true,
            HEAD => false,
            _ => self.key.as_ref().is_some_and(|x| x >= k),
        }
    }

    #[inline]
    fn holds(&self, k: &K) -> bool {
        self.kind == NORMAL && self.key.as_ref() == Some(k)
    }
}

/// Harris's lock-free sorted linked-list map.
pub struct HarrisList<K: Key, V: Value> {
    /// Maintained element count backing `len_approx`.
    len: ApproxLen,
    head: *mut Node<K, V>,
    tail: *mut Node<K, V>,
    /// `true` = optimized finds (no helping during `get`).
    opt_find: bool,
    label: &'static str,
}

// SAFETY: all mutation is CAS-based; reclamation via flock-epoch.
unsafe impl<K: Key, V: Value> Send for HarrisList<K, V> {}
unsafe impl<K: Key, V: Value> Sync for HarrisList<K, V> {}

impl<K: Key, V: Value> HarrisList<K, V> {
    /// Classic Harris list: finds help unlink marked nodes.
    pub fn new() -> Self {
        Self::build(false, "harris_list")
    }

    /// Optimized variant: `get` never writes (paper's `harris_list_opt`).
    pub fn new_opt() -> Self {
        Self::build(true, "harris_list_opt")
    }

    fn build(opt_find: bool, label: &'static str) -> Self {
        let tail = flock_epoch::alloc(Node::new(None, None, 0, TAIL));
        let head = flock_epoch::alloc(Node::new(None, None, tail as usize, HEAD));
        Self {
            head,
            tail,
            opt_find,
            label,
            len: ApproxLen::new(),
        }
    }

    /// Harris search: returns `(pred, curr)` with `pred` unmarked,
    /// `pred.next == curr`, and `curr` the first unmarked node at-or-after
    /// `k`. Unlinks any marked run it encounters (and retires it).
    fn search(&self, k: &K) -> (*mut Node<K, V>, *mut Node<K, V>) {
        'retry: loop {
            let mut pred = self.head;
            // SAFETY: caller pinned; nodes retired through the collector.
            let mut curr = unmark(unsafe { &*pred }.next.load(Ordering::SeqCst)) as *mut Node<K, V>;
            loop {
                // Skip over a run of marked nodes after pred.
                let mut curr_next = unsafe { &*curr }.next.load(Ordering::SeqCst);
                let run_start = curr;
                while marked(curr_next) {
                    curr = unmark(curr_next) as *mut Node<K, V>;
                    curr_next = unsafe { &*curr }.next.load(Ordering::SeqCst);
                }
                if run_start != curr {
                    // Physically unlink the marked run [run_start, curr).
                    // SAFETY: pred is unmarked and pointed at run_start.
                    if unsafe { &*pred }
                        .next
                        .compare_exchange(
                            run_start as usize,
                            curr as usize,
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                        )
                        .is_err()
                    {
                        continue 'retry;
                    }
                    // Retire the unlinked run: we won the unlink CAS, so we
                    // are the unique owner of these nodes.
                    let mut p = run_start;
                    while p != curr {
                        // SAFETY: unlinked above; each node retired once by
                        // the unique unlink winner.
                        let nx =
                            unmark(unsafe { &*p }.next.load(Ordering::SeqCst)) as *mut Node<K, V>;
                        unsafe { flock_epoch::retire(p) };
                        p = nx;
                    }
                }
                // SAFETY: pinned.
                if unsafe { &*curr }.at_or_after(k) {
                    return (pred, curr);
                }
                pred = curr;
                curr = unmark(unsafe { &*curr }.next.load(Ordering::SeqCst)) as *mut Node<K, V>;
            }
        }
    }

    /// Insert; `false` if present.
    pub fn insert(&self, k: K, v: V) -> bool {
        let ok = self.insert_impl(k, v);
        if ok {
            self.len.inc();
        }
        ok
    }

    fn insert_impl(&self, k: K, v: V) -> bool {
        let _g = flock_epoch::pin();
        loop {
            let (pred, curr) = self.search(&k);
            // SAFETY: pinned.
            let curr_ref = unsafe { &*curr };
            if curr_ref.holds(&k) {
                return false;
            }
            let newn = flock_epoch::alloc(Node::new(
                Some(k.clone()),
                Some(v.clone()),
                curr as usize,
                NORMAL,
            ));
            // SAFETY: pinned; pred was unmarked when search returned.
            if unsafe { &*pred }
                .next
                .compare_exchange(
                    curr as usize,
                    newn as usize,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_ok()
            {
                return true;
            }
            // SAFETY: newn was never published.
            unsafe { flock_epoch::free_now(newn) };
        }
    }

    /// Remove; `false` if absent.
    pub fn remove(&self, k: K) -> bool {
        let ok = self.remove_impl(&k);
        if ok {
            self.len.dec();
        }
        ok
    }

    fn remove_impl(&self, k: &K) -> bool {
        let _g = flock_epoch::pin();
        loop {
            let (pred, curr) = self.search(k);
            // SAFETY: pinned.
            let curr_ref = unsafe { &*curr };
            if !curr_ref.holds(k) {
                return false;
            }
            let succ = curr_ref.next.load(Ordering::SeqCst);
            if marked(succ) {
                continue; // someone else is deleting it; re-search (helps)
            }
            // Logical delete: mark curr's next.
            if curr_ref
                .next
                .compare_exchange(succ, succ | MARK, Ordering::SeqCst, Ordering::SeqCst)
                .is_err()
            {
                continue;
            }
            // Physical delete (best effort; search cleans up otherwise).
            // SAFETY: pinned.
            if unsafe { &*pred }
                .next
                .compare_exchange(curr as usize, succ, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                // SAFETY: unlinked by this CAS; unique retire.
                unsafe { flock_epoch::retire(curr) };
            } else {
                self.search(k); // helping path retires it
            }
            return true;
        }
    }

    /// Lookup. The classic variant helps unlink while searching; the
    /// optimized variant is read-only.
    pub fn get(&self, k: K) -> Option<V> {
        let _g = flock_epoch::pin();
        if self.opt_find {
            // Read-only walk: skip marked nodes logically.
            // SAFETY: pinned.
            let mut curr =
                unmark(unsafe { &*self.head }.next.load(Ordering::SeqCst)) as *mut Node<K, V>;
            loop {
                // SAFETY: pinned.
                let c = unsafe { &*curr };
                if c.at_or_after(&k) {
                    let is_marked = marked(c.next.load(Ordering::SeqCst));
                    return if c.holds(&k) && !is_marked {
                        c.value.as_ref().map(ValueCell::load)
                    } else {
                        None
                    };
                }
                curr = unmark(c.next.load(Ordering::SeqCst)) as *mut Node<K, V>;
            }
        } else {
            let (_, curr) = self.search(&k);
            // SAFETY: pinned.
            let c = unsafe { &*curr };
            if c.holds(&k) {
                c.value.as_ref().map(ValueCell::load)
            } else {
                None
            }
        }
    }

    /// Presence-only lookup: the same walk as [`HarrisList::get`] without
    /// decoding the value cell.
    pub fn contains(&self, k: &K) -> bool {
        let _g = flock_epoch::pin();
        if self.opt_find {
            // SAFETY: pinned.
            let mut curr =
                unmark(unsafe { &*self.head }.next.load(Ordering::SeqCst)) as *mut Node<K, V>;
            loop {
                // SAFETY: pinned.
                let c = unsafe { &*curr };
                if c.at_or_after(k) {
                    return c.holds(k) && !marked(c.next.load(Ordering::SeqCst));
                }
                curr = unmark(c.next.load(Ordering::SeqCst)) as *mut Node<K, V>;
            }
        } else {
            let (_, curr) = self.search(k);
            // SAFETY: pinned.
            unsafe { &*curr }.holds(k)
        }
    }

    /// Native atomic update: one atomic swap of the node's value cell.
    /// Returns `false` (storing nothing) if `k` is absent.
    ///
    /// Linearizes at the swap when the node is still unmarked there, and
    /// immediately before the concurrent remove's mark otherwise (the value
    /// written into an already-marked node is unobservable — `get` treats
    /// marked nodes as absent — which matches update-then-remove).
    pub fn update(&self, k: K, v: V) -> bool {
        let _g = flock_epoch::pin();
        let (_, curr) = self.search(&k);
        // SAFETY: pinned; `search` returned `curr` unmarked.
        let c = unsafe { &*curr };
        if !c.holds(&k) {
            return false;
        }
        c.value
            .as_ref()
            .expect("normal node has a value cell")
            .replace(v);
        true
    }

    /// Element count (O(n); tests/diagnostics). Skips marked nodes.
    pub fn len(&self) -> usize {
        let _g = flock_epoch::pin();
        let mut n = 0;
        // SAFETY: pinned walk.
        let mut p = unmark(unsafe { &*self.head }.next.load(Ordering::SeqCst)) as *mut Node<K, V>;
        while unsafe { &*p }.kind == NORMAL {
            let nx = unsafe { &*p }.next.load(Ordering::SeqCst);
            if !marked(nx) {
                n += 1;
            }
            p = unmark(nx) as *mut Node<K, V>;
        }
        n
    }

    /// Is the list empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Key, V: Value> Default for HarrisList<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Key, V: Value> Drop for HarrisList<K, V> {
    fn drop(&mut self) {
        // SAFETY: exclusive access; marked-but-linked nodes are still
        // reachable here and freed once; retired nodes belong to the
        // collector.
        unsafe {
            let mut p = self.head;
            loop {
                let next = unmark((*p).next.load(Ordering::SeqCst)) as *mut Node<K, V>;
                let is_tail = p == self.tail;
                flock_epoch::free_now(p);
                if is_tail {
                    break;
                }
                p = next;
            }
        }
    }
}

impl<K: Key, V: Value> Map<K, V> for HarrisList<K, V> {
    fn insert(&self, key: K, value: V) -> bool {
        HarrisList::insert(self, key, value)
    }
    fn remove(&self, key: K) -> bool {
        HarrisList::remove(self, key)
    }
    fn get(&self, key: K) -> Option<V> {
        HarrisList::get(self, key)
    }
    fn contains(&self, key: K) -> bool {
        HarrisList::contains(self, &key)
    }
    fn name(&self) -> &'static str {
        self.label
    }
    fn update(&self, key: K, value: V) -> bool {
        HarrisList::update(self, key, value)
    }
    fn has_atomic_update(&self) -> bool {
        true
    }
    fn len_approx(&self) -> Option<usize> {
        Some(self.len.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flock_api::testing as testutil;

    #[test]
    fn basic_ops_both_variants() {
        let lists: [HarrisList<u64, u64>; 2] = [HarrisList::new(), HarrisList::new_opt()];
        for l in lists {
            assert!(l.insert(5, 50));
            assert!(!l.insert(5, 51));
            assert!(l.insert(1, 10));
            assert!(l.insert(9, 90));
            assert_eq!(l.get(5), Some(50));
            assert!(l.remove(5));
            assert!(!l.remove(5));
            assert_eq!(l.get(5), None);
            assert_eq!(l.len(), 2);
        }
    }

    #[test]
    fn native_update_in_place() {
        for l in [HarrisList::<u64, u64>::new(), HarrisList::new_opt()] {
            assert!(!l.update(1, 10), "update of an absent key refused");
            assert!(l.insert(1, 10));
            assert!(l.update(1, 11));
            assert_eq!(l.get(1), Some(11));
            assert_eq!(l.len(), 1, "update must not change the count");
            assert!(l.remove(1));
            assert!(!l.update(1, 12));
        }
    }

    #[test]
    fn oracle() {
        let l: HarrisList<u64, u64> = HarrisList::new();
        testutil::oracle_check(&l, 3_000, 64, 3);
        let l: HarrisList<u64, u64> = HarrisList::new_opt();
        testutil::oracle_check(&l, 3_000, 64, 4);
    }

    #[test]
    fn concurrent_partitioned() {
        let l: HarrisList<u64, u64> = HarrisList::new();
        testutil::partition_stress(&l, 4, 1_500);
        let l: HarrisList<u64, u64> = HarrisList::new_opt();
        testutil::partition_stress(&l, 4, 1_500);
    }

    /// Marked-run unlinking: delete several adjacent nodes "logically" by
    /// racing removes, then verify searches clean up and the list stays
    /// consistent.
    #[test]
    fn adjacent_removals() {
        let l: HarrisList<u64, u64> = HarrisList::new();
        for k in 0..100 {
            l.insert(k, k);
        }
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let l = &l;
                s.spawn(move || {
                    for k in (t * 25)..(t * 25 + 25) {
                        assert!(l.remove(k), "remove {k}");
                    }
                });
            }
        });
        assert!(l.is_empty());
    }
}
