//! A lock-free per-node value cell for the baseline structures — the
//! non-Flock counterpart of `flock_core::ValueSlot`.
//!
//! The CAS-based baselines historically replaced whole nodes, so their
//! `Map::update` fell back to the non-atomic remove+insert composite. This
//! cell gives every baseline a **native atomic update** the way
//! `blocking_bst`'s revive slot already worked: the value lives in one
//! atomic word of encoded [`ValueRepr`] payload bits, readers
//! snapshot-decode it without locks, and a writer replaces it with a single
//! atomic swap that epoch-retires the displaced encoding. Inline values pay
//! one atomic op; fat `Indirect<T>` values ride behind an epoch-managed
//! pointer, so concurrent readers keep a stable snapshot across the swap
//! and every displaced encoding is dropped exactly once.
//!
//! Unlike the Flock slot there is no thunk log here — baselines have no
//! helpers replaying critical sections — so `replace` is just swap+retire.
//! Concurrent `replace`s on one cell are allowed (each swap displaces
//! exactly one encoding); the structure only has to guarantee the cell
//! outlives its readers, which epoch reclamation of the owning node already
//! does.

use std::sync::atomic::{AtomicU64, Ordering};

use flock_api::Value;

/// One atomic word of encoded value bits with snapshot reads and
/// swap-and-retire replacement. See the module docs.
pub(crate) struct ValueCell<V: Value> {
    bits: AtomicU64,
    _v: std::marker::PhantomData<V>,
}

// SAFETY: the cell is one atomic word; `V: Value` implies the decoded
// payloads are Send + Sync.
unsafe impl<V: Value> Send for ValueCell<V> {}
unsafe impl<V: Value> Sync for ValueCell<V> {}

impl<V: Value> ValueCell<V> {
    /// A new cell holding `v` (allocates for indirect representations).
    pub(crate) fn new(v: V) -> Self {
        Self {
            bits: AtomicU64::new(V::encode(v)),
            _v: std::marker::PhantomData,
        }
    }

    /// Snapshot-decode the current value. Caller must be epoch-pinned (all
    /// baseline operations pin on entry).
    #[inline]
    pub(crate) fn load(&self) -> V {
        // SAFETY: the cell always holds a live encoding — `replace` retires
        // the displaced one through the collector and the final one is
        // freed only at cell drop (post-grace for retired nodes); the
        // caller is pinned per the contract.
        unsafe { V::decode(self.bits.load(Ordering::SeqCst)) }
    }

    /// Replace the value: one atomic swap, displaced encoding retired
    /// through the epoch collector. Caller must be epoch-pinned.
    #[inline]
    pub(crate) fn replace(&self, v: V) {
        let old = self.bits.swap(V::encode(v), Ordering::SeqCst);
        // SAFETY: `old` was displaced by the swap above (each encoding is
        // displaced by exactly one swap) and the caller is pinned; readers
        // that still decode it are protected by the grace period.
        unsafe { V::retire_bits(old) };
    }
}

impl<V: Value> Drop for ValueCell<V> {
    fn drop(&mut self) {
        // SAFETY: exclusive access (drop); the final encoding is freed
        // exactly once. For cells inside collector-retired nodes this runs
        // after the grace period, so no reader can still be decoding it.
        unsafe { V::dealloc_bits(self.bits.load(Ordering::Relaxed)) };
    }
}

impl<V: Value> std::fmt::Debug for ValueCell<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let _g = flock_epoch::pin();
        f.debug_tuple("ValueCell").field(&self.load()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flock_epoch::Indirect;

    #[test]
    fn inline_roundtrip() {
        let c = ValueCell::new(5u64);
        assert_eq!(c.load(), 5);
        let _g = flock_epoch::pin();
        c.replace(9);
        assert_eq!(c.load(), 9);
    }

    #[test]
    fn indirect_replace_retires_displaced() {
        let c: ValueCell<Indirect<Vec<u64>>> = ValueCell::new(Indirect(vec![1, 2]));
        {
            let _g = flock_epoch::pin();
            c.replace(Indirect(vec![3, 4, 5]));
            assert_eq!(c.load(), Indirect(vec![3, 4, 5]));
        }
        drop(c);
        flock_epoch::flush_all();
    }
}
