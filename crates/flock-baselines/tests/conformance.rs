//! One `map_conformance!` instantiation per baseline structure. The
//! baselines ignore the Flock lock mode, so running the suite in both modes
//! simply runs it twice — keeping the instantiation identical to the Flock
//! structures' is the point of the shared macro.

use flock_baselines::{BlockingABTree, BlockingBst, EllenBst, HarrisList, NatarajanBst};

flock_api::map_conformance!(harris_list, HarrisList::new());
flock_api::map_conformance!(harris_list_opt, HarrisList::new_opt());
flock_api::map_conformance!(natarajan, NatarajanBst::new());
flock_api::map_conformance!(ellen, EllenBst::new());
flock_api::map_conformance!(bronson_style_bst, BlockingBst::new());
flock_api::map_conformance!(srivastava_abtree, BlockingABTree::new());
