//! One `map_conformance!` instantiation per baseline structure. The
//! baselines ignore the Flock lock mode, so running the suite in both modes
//! simply runs it twice — keeping the instantiation identical to the Flock
//! structures' is the point of the shared macro.

use flock_baselines::{BlockingABTree, BlockingBst, EllenBst, HarrisList, NatarajanBst};

flock_api::map_conformance!(harris_list, HarrisList::new());
flock_api::map_conformance!(harris_list_opt, HarrisList::new_opt());
flock_api::map_conformance!(natarajan, NatarajanBst::new());
flock_api::map_conformance!(ellen, EllenBst::new());
flock_api::map_conformance!(bronson_style_bst, BlockingBst::new());
flock_api::map_conformance!(srivastava_abtree, BlockingABTree::new());

/// Every baseline maintains a striped counter now: `len_approx` must be
/// `Some`, track mixed trait-level ops exactly when quiescent, and stay
/// exact after a concurrent partitioned workload.
#[test]
fn maintained_len_approx_is_exact_when_quiescent() {
    use flock_api::Map;
    let maps: Vec<Box<dyn Map<u64, u64>>> = vec![
        Box::new(HarrisList::new()),
        Box::new(HarrisList::new_opt()),
        Box::new(NatarajanBst::new()),
        Box::new(EllenBst::new()),
        Box::new(BlockingBst::new()),
        Box::new(BlockingABTree::new()),
    ];
    for map in maps {
        let name = map.name();
        assert_eq!(map.len_approx(), Some(0), "{name}: empty map");
        for k in 0..100 {
            assert!(map.insert(k, k * 10), "{name}");
        }
        assert!(!map.insert(7, 0), "{name}: duplicate insert not counted");
        assert_eq!(map.len_approx(), Some(100), "{name}");
        for k in 0..40 {
            assert!(map.remove(k), "{name}");
        }
        assert!(!map.remove(7), "{name}: double remove not counted");
        assert_eq!(map.len_approx(), Some(60), "{name}");
        assert!(map.update(50, 1), "{name}");
        assert_eq!(
            map.len_approx(),
            Some(60),
            "{name}: update must not change the count"
        );
        // Concurrent churn over disjoint partitions; exact once quiescent.
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let map = &map;
                s.spawn(move || {
                    for i in 0..250u64 {
                        let k = 1_000 + i * 4 + t;
                        assert!(map.insert(k, i));
                        if i % 2 == 0 {
                            assert!(map.remove(k));
                        }
                    }
                });
            }
        });
        // 60 + 4 threads * 125 surviving odd-i keys.
        assert_eq!(map.len_approx(), Some(60 + 4 * 125), "{name} after churn");
    }
}
